"""Arbitration policies for simultaneous channel requests.

Section 3 of the paper makes two stipulations:

* Assumption 5 -- waiting messages are served in an order that prevents
  starvation (:class:`FifoArbitration` is the faithful default);
* the adversarial stipulation used to *construct* deadlocks: "when multiple
  messages arrive simultaneously and request the same output channel, and
  one of these messages can lead to a deadlock, that message is assumed to
  acquire the channel" (:class:`AdversarialArbitration`, driven by a
  preference order over message tags).

The deterministic simulator takes one policy; the exhaustive model checker
in :mod:`repro.analysis` instead *branches over every winner*, which
subsumes all policies.
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from collections.abc import Sequence

from repro.sim.message import MessageState
from repro.topology.channels import Channel


class ArbitrationPolicy(ABC):
    """Chooses, per contested channel, which requester wins this cycle."""

    @abstractmethod
    def choose(
        self, channel: Channel, requesters: Sequence[MessageState], cycle: int
    ) -> MessageState:
        """Return the winning requester (must be an element of ``requesters``)."""

    def reset(self) -> None:
        """Clear inter-cycle state (called when a simulator is reset)."""


class FifoArbitration(ArbitrationPolicy):
    """Longest-waiting requester wins; ties broken by lowest message id.

    Starvation-free (Assumption 5): a message's first-request cycle for a
    channel only ever gets older, so it eventually outranks newcomers.
    """

    def choose(
        self, channel: Channel, requesters: Sequence[MessageState], cycle: int
    ) -> MessageState:
        return min(
            requesters,
            key=lambda m: (m.first_request_cycle.get(channel.cid, cycle), m.mid),
        )


class RoundRobinArbitration(ArbitrationPolicy):
    """Per-channel rotating priority over message ids."""

    def __init__(self) -> None:
        self._last_winner: dict[int, int] = {}

    def choose(
        self, channel: Channel, requesters: Sequence[MessageState], cycle: int
    ) -> MessageState:
        last = self._last_winner.get(channel.cid, -1)
        winner = min(
            requesters, key=lambda m: ((m.mid - last - 1) % (1 << 30), m.mid)
        )
        self._last_winner[channel.cid] = winner.mid
        return winner

    def reset(self) -> None:
        self._last_winner.clear()


class RandomArbitration(ArbitrationPolicy):
    """Seeded uniform choice -- used for Monte-Carlo deadlock hunting."""

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed
        self._rng = random.Random(seed)

    def choose(
        self, channel: Channel, requesters: Sequence[MessageState], cycle: int
    ) -> MessageState:
        return self._rng.choice(list(requesters))

    def reset(self) -> None:
        self._rng = random.Random(self.seed)


class AdversarialArbitration(ArbitrationPolicy):
    """The paper's deadlock-seeking tie-break.

    ``prefer`` is an ordered list of message tags; a requester whose tag
    appears earlier in the list beats any requester appearing later or not
    at all.  Requesters outside the list fall back to FIFO order.
    """

    def __init__(self, prefer: Sequence[str] = ()) -> None:
        self._rank = {tag: i for i, tag in enumerate(prefer)}
        self._fifo = FifoArbitration()

    def choose(
        self, channel: Channel, requesters: Sequence[MessageState], cycle: int
    ) -> MessageState:
        ranked = [m for m in requesters if m.spec.tag in self._rank]
        if ranked:
            return min(ranked, key=lambda m: (self._rank[m.spec.tag], m.mid))
        return self._fifo.choose(channel, requesters, cycle)
