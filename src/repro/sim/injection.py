"""Injection and stall scheduling.

:class:`InjectionSchedule` is a convenience builder for explicit message
lists (the figure experiments inject specific messages at specific times).
:class:`StallSchedule` encodes the Section 6 adversary: a router may delay a
message's in-network progress on chosen cycles.  The deterministic simulator
consumes both; the model checker explores stalls nondeterministically
instead.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Iterable, Mapping

from repro.sim.message import MessageSpec
from repro.topology.channels import NodeId


@dataclass
class InjectionSchedule:
    """Ordered builder of :class:`MessageSpec` lists with auto ids."""

    specs: list[MessageSpec] = field(default_factory=list)

    def add(
        self,
        src: NodeId,
        dst: NodeId,
        *,
        length: int,
        at: int = 0,
        tag: str = "",
    ) -> MessageSpec:
        spec = MessageSpec(
            mid=len(self.specs), src=src, dst=dst, length=length, inject_time=at, tag=tag
        )
        self.specs.append(spec)
        return spec

    def extend(self, specs: Iterable[MessageSpec]) -> None:
        for s in specs:
            if any(s.mid == existing.mid for existing in self.specs):
                raise ValueError(f"duplicate message id {s.mid}")
            self.specs.append(s)

    def __iter__(self):
        return iter(self.specs)

    def __len__(self) -> int:
        return len(self.specs)


class StallSchedule:
    """Per-message sets of cycles on which in-network progress is frozen.

    ``stalls`` maps message id to an iterable of cycle numbers.  Used to
    reproduce the Section 6 "delayed one or more clock cycles" scenarios
    deterministically.
    """

    def __init__(self, stalls: Mapping[int, Iterable[int]] | None = None) -> None:
        self._stalls: dict[int, frozenset[int]] = {}
        if stalls:
            for mid, cycles in stalls.items():
                self._stalls[mid] = frozenset(int(c) for c in cycles)

    def stalled(self, mid: int, cycle: int) -> bool:
        cycles = self._stalls.get(mid)
        return cycles is not None and cycle in cycles

    def total_budget(self, mid: int) -> int:
        """Number of stall cycles scheduled for ``mid``."""
        return len(self._stalls.get(mid, frozenset()))

    @classmethod
    def delay_window(cls, mid: int, start: int, count: int) -> "StallSchedule":
        """Stall ``mid`` for ``count`` consecutive cycles starting at ``start``."""
        return cls({mid: range(start, start + count)})

    def merged(self, other: "StallSchedule") -> "StallSchedule":
        out = StallSchedule()
        out._stalls = dict(self._stalls)
        for mid, cycles in other._stalls.items():
            out._stalls[mid] = out._stalls.get(mid, frozenset()) | cycles
        return out
