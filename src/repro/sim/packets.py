"""Message segmentation into packets and destination-side reassembly.

Paper Section 1: "Wormhole routing propagates messages through the network
by dividing each message into packets, which are further divided into
flits.  ...  Within the network, each packet is a separate message."  The
whole analysis layer therefore works on packets; this module supplies the
host-level view on top: split a long transfer into packets of a maximum
payload, inject them (optionally pipelined or strictly in order), and
reassemble at the destination, reporting end-to-end transfer metrics.

Packets of one transfer travel independently and may interleave with other
traffic; under oblivious routing they follow the same path, so arrival
order equals injection order and reassembly is a completeness check.  The
module still verifies ordering explicitly -- with adaptive routing packets
can arrive out of order, and the reassembler reports it rather than
assuming it away.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Sequence

from repro.sim.engine import SimResult
from repro.sim.message import MessageSpec, MessageStatus
from repro.topology.channels import NodeId


@dataclass(frozen=True)
class TransferSpec:
    """A host-level transfer to be segmented into packets."""

    tid: int
    src: NodeId
    dst: NodeId
    total_flits: int
    max_packet_flits: int
    inject_time: int = 0
    pipelined: bool = True  # False: packet k+1 only after packet k injects

    def __post_init__(self) -> None:
        if self.total_flits < 1:
            raise ValueError("total_flits must be >= 1")
        if self.max_packet_flits < 1:
            raise ValueError("max_packet_flits must be >= 1")


@dataclass
class PacketPlan:
    """The MessageSpecs one transfer segments into."""

    transfer: TransferSpec
    packets: list[MessageSpec]

    @property
    def num_packets(self) -> int:
        return len(self.packets)


def segment_transfers(
    transfers: Sequence[TransferSpec], *, first_mid: int = 0
) -> tuple[list[PacketPlan], list[MessageSpec]]:
    """Split transfers into packet MessageSpecs with unique ids.

    Packet tags are ``t<tid>.p<seq>`` so reassembly can group and order
    them.  Non-pipelined transfers space injection times so packet ``k+1``
    cannot enter before ``k`` has fully left the source (a conservative
    ``length`` gap); pipelined transfers hand all packets to the network at
    the transfer's inject time and let channel serialisation order them.
    """
    plans: list[PacketPlan] = []
    specs: list[MessageSpec] = []
    mid = first_mid
    for tr in transfers:
        remaining = tr.total_flits
        seq = 0
        t = tr.inject_time
        packets: list[MessageSpec] = []
        while remaining > 0:
            length = min(remaining, tr.max_packet_flits)
            packets.append(
                MessageSpec(
                    mid=mid,
                    src=tr.src,
                    dst=tr.dst,
                    length=length,
                    inject_time=t,
                    tag=f"t{tr.tid}.p{seq}",
                )
            )
            mid += 1
            seq += 1
            remaining -= length
            if not tr.pipelined:
                t += length
        plans.append(PacketPlan(transfer=tr, packets=packets))
        specs.extend(packets)
    return plans, specs


@dataclass
class TransferReport:
    """Reassembly outcome for one transfer."""

    tid: int
    complete: bool
    packets_delivered: int
    packets_total: int
    flits_delivered: int
    in_order: bool
    start_cycle: int | None
    finish_cycle: int | None

    @property
    def transfer_latency(self) -> int | None:
        if self.finish_cycle is None or self.start_cycle is None:
            return None
        return self.finish_cycle - self.start_cycle


def reassemble(plans: Sequence[PacketPlan], result: SimResult) -> list[TransferReport]:
    """Check every transfer's packets against a finished simulation."""
    reports: list[TransferReport] = []
    for plan in plans:
        done_cycles: list[int | None] = []
        flits = 0
        for spec in plan.packets:
            m = result.messages[spec.mid]
            if m.status is MessageStatus.DELIVERED:
                done_cycles.append(m.done_cycle)
                flits += spec.length
            else:
                done_cycles.append(None)
        delivered = [c for c in done_cycles if c is not None]
        complete = len(delivered) == len(plan.packets)
        in_order = complete and all(
            a <= b for a, b in zip(delivered, delivered[1:])
        )
        reports.append(
            TransferReport(
                tid=plan.transfer.tid,
                complete=complete,
                packets_delivered=len(delivered),
                packets_total=len(plan.packets),
                flits_delivered=flits,
                in_order=in_order,
                start_cycle=plan.transfer.inject_time,
                finish_cycle=max(delivered) if complete else None,
            )
        )
    return reports
