"""Chien-style router cost and cycle-time model (paper reference [4]).

The paper's introduction motivates oblivious routing with Chien's
observation that "oblivious routing algorithms usually require less complex
routers and may have a faster network cycle time".  This module implements
a simplified version of Chien's k-ary n-cube router delay model so that
claim can be *measured* for the algorithms in this repository:

* the router's critical path is decomposed into address decode, routing
  arbitration, crossbar traversal and virtual-channel controller stages;
* arbitration and crossbar delays grow logarithmically in the switch
  degree (physical ports x virtual channels + injection/delivery);
* adaptive routers pay an extra arbitration stage proportional to the
  size of the candidate set they must select from.

Absolute numbers are technology constants (defaults loosely follow the
0.8um gate-delay figures of the original paper, in nanoseconds); the
*relative* comparisons are the point -- e.g. the Figure 1 hub router N*
concentrates the whole network's traffic and its crossbar dwarfs a mesh
router's, which is an honest cost of the paper's construction.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.topology.channels import NodeId
from repro.topology.network import Network


@dataclass(frozen=True)
class RouterCostModel:
    """Technology constants for the delay model (arbitrary ns-like units)."""

    t_decode: float = 2.7  # address decode / header parse
    t_arb_base: float = 1.4  # arbitration, plus per-log2(ports) term
    t_arb_per_log: float = 0.6
    t_xbar_base: float = 0.6  # crossbar, plus per-log2(ports) term
    t_xbar_per_log: float = 0.6
    t_vc_base: float = 1.2  # VC controller, plus per-log2(vcs) term
    t_vc_per_log: float = 0.6
    t_adaptive_per_log: float = 0.9  # selection among routing candidates


@dataclass
class RouterCost:
    """Per-router complexity figures."""

    node: NodeId
    in_ports: int
    out_ports: int
    max_vcs: int
    candidate_width: int
    cycle_time: float
    crossbar_points: int

    def row(self) -> dict[str, object]:
        return {
            "node": str(self.node),
            "in": self.in_ports,
            "out": self.out_ports,
            "vcs": self.max_vcs,
            "xbar points": self.crossbar_points,
            "cycle time": round(self.cycle_time, 2),
        }


def _log2(x: int) -> float:
    return math.log2(max(2, x))


def router_cost(
    net: Network,
    node: NodeId,
    *,
    model: RouterCostModel | None = None,
    candidate_width: int = 1,
) -> RouterCost:
    """Cost of one node's router.

    ``candidate_width`` is the maximum number of output candidates the
    routing function may offer (1 for oblivious algorithms); adaptive
    selection adds a stage growing with its log.
    Injection and delivery each add one port.
    """
    m = model or RouterCostModel()
    ins = len(net.channels_in(node)) + 1  # + injection
    outs = len(net.channels_out(node)) + 1  # + delivery
    vcs_in = {}
    for ch in net.channels_in(node) + net.channels_out(node):
        key = (ch.src, ch.dst)
        vcs_in[key] = vcs_in.get(key, 0) + 1
    max_vcs = max(vcs_in.values(), default=1)
    ports = max(ins, outs)
    cycle = (
        m.t_decode
        + m.t_arb_base
        + m.t_arb_per_log * _log2(ports)
        + m.t_xbar_base
        + m.t_xbar_per_log * _log2(ports)
        + m.t_vc_base
        + m.t_vc_per_log * _log2(max_vcs)
    )
    if candidate_width > 1:
        cycle += m.t_adaptive_per_log * _log2(candidate_width)
    return RouterCost(
        node=node,
        in_ports=ins,
        out_ports=outs,
        max_vcs=max_vcs,
        candidate_width=candidate_width,
        cycle_time=cycle,
        crossbar_points=ins * outs,
    )


@dataclass
class NetworkCost:
    """Whole-network figures: the clock must satisfy the slowest router."""

    per_node: list[RouterCost] = field(default_factory=list)

    @property
    def cycle_time(self) -> float:
        return max((r.cycle_time for r in self.per_node), default=0.0)

    @property
    def bottleneck(self) -> RouterCost:
        return max(self.per_node, key=lambda r: r.cycle_time)

    @property
    def total_crossbar_points(self) -> int:
        return sum(r.crossbar_points for r in self.per_node)

    def summary(self) -> dict[str, object]:
        b = self.bottleneck
        return {
            "routers": len(self.per_node),
            "network cycle time": round(self.cycle_time, 2),
            "bottleneck node": str(b.node),
            "bottleneck ports": max(b.in_ports, b.out_ports),
            "total xbar points": self.total_crossbar_points,
        }


def network_cost(
    net: Network,
    *,
    model: RouterCostModel | None = None,
    candidate_width: int = 1,
) -> NetworkCost:
    """Router costs for every node; the max cycle time clocks the network."""
    return NetworkCost(
        per_node=[
            router_cost(net, node, model=model, candidate_width=candidate_width)
            for node in net.nodes
        ]
    )
