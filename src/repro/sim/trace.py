"""Event tracing utilities for debugging and test assertions."""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Collection


@dataclass
class TraceRecorder:
    """Collects ``(cycle, kind, data)`` events emitted by the engine.

    Pass ``recorder`` (it is callable) as the ``trace=`` argument of
    :class:`~repro.sim.engine.Simulator`.

    ``kinds`` optionally restricts recording to the named event kinds;
    events of other kinds are dropped before their data dict is copied,
    so long traffic runs that only care about e.g. ``deliver`` events
    do not accumulate (or allocate) the full movement trace.
    """

    events: list[tuple[int, str, dict]] = field(default_factory=list)
    #: record only these event kinds (``None`` = record everything)
    kinds: Collection[str] | None = None

    def __post_init__(self) -> None:
        if self.kinds is not None:
            self.kinds = frozenset(self.kinds)

    def __call__(self, cycle: int, kind: str, data: dict) -> None:
        if self.kinds is not None and kind not in self.kinds:
            return
        self.events.append((cycle, kind, dict(data)))

    def of_kind(self, kind: str) -> list[tuple[int, str, dict]]:
        return [e for e in self.events if e[1] == kind]

    def for_message(self, mid: int) -> list[tuple[int, str, dict]]:
        return [e for e in self.events if e[2].get("mid") == mid]

    def first(self, kind: str, mid: int) -> int | None:
        """Cycle of the first ``kind`` event for message ``mid``."""
        for cycle, k, data in self.events:
            if k == kind and data.get("mid") == mid:
                return cycle
        return None

    def clear(self) -> None:
        self.events.clear()

    def render(self, *, limit: int = 200) -> str:
        """Human-readable trace dump (for failed-test diagnostics)."""
        lines = [
            f"t={cycle:<5} {kind:<16} {data}" for cycle, kind, data in self.events[:limit]
        ]
        if len(self.events) > limit:
            lines.append(f"... ({len(self.events) - limit} more events)")
        return "\n".join(lines)
