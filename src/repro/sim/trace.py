"""Event tracing utilities for debugging and test assertions."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class TraceRecorder:
    """Collects ``(cycle, kind, data)`` events emitted by the engine.

    Pass ``recorder`` (it is callable) as the ``trace=`` argument of
    :class:`~repro.sim.engine.Simulator`.
    """

    events: list[tuple[int, str, dict]] = field(default_factory=list)

    def __call__(self, cycle: int, kind: str, data: dict) -> None:
        self.events.append((cycle, kind, dict(data)))

    def of_kind(self, kind: str) -> list[tuple[int, str, dict]]:
        return [e for e in self.events if e[1] == kind]

    def for_message(self, mid: int) -> list[tuple[int, str, dict]]:
        return [e for e in self.events if e[2].get("mid") == mid]

    def first(self, kind: str, mid: int) -> int | None:
        """Cycle of the first ``kind`` event for message ``mid``."""
        for cycle, k, data in self.events:
            if k == kind and data.get("mid") == mid:
                return cycle
        return None

    def clear(self) -> None:
        self.events.clear()

    def render(self, *, limit: int = 200) -> str:
        """Human-readable trace dump (for failed-test diagnostics)."""
        lines = [
            f"t={cycle:<5} {kind:<16} {data}" for cycle, kind, data in self.events[:limit]
        ]
        if len(self.events) > limit:
            lines.append(f"... ({len(self.events) - limit} more events)")
        return "\n".join(lines)
