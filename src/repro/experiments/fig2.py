"""Experiment E2 -- Figure 2 + Theorem 4.

Theorem 4: a shared channel outside the cycle used by only *two* messages
always yields a reachable deadlock.  The experiment:

1. verifies the default Figure 2 configuration deadlocks at stall budget 0;
2. confirms the minimum witness follows the proof's schedule shape -- the
   message with the longer approach is injected first;
3. sweeps a family of (approach, hold) parameters and checks *every*
   two-message configuration deadlocks (the theorem is universal);
4. replays a witness on the flit-level simulator.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from repro.analysis import SystemSpec, search_deadlock
from repro.analysis.schedules import replay_witness
from repro.core.two_message import build_two_message_config


@dataclass
class Fig2Result:
    default_deadlocks: bool
    longer_approach_injected_first: bool
    replay_deadlocked: bool
    sweep_rows: list[dict[str, object]] = field(default_factory=list)

    @property
    def all_sweep_deadlock(self) -> bool:
        return all(r["deadlock"] for r in self.sweep_rows)

    @property
    def matches_paper(self) -> bool:
        return self.default_deadlocks and self.all_sweep_deadlock and self.replay_deadlocked


def run_fig2_experiment(
    *,
    approach_range: tuple[int, ...] = (1, 2, 3, 4),
    hold_range: tuple[int, ...] = (2, 3, 4),
) -> Fig2Result:
    """Run the E2 battery; the sweep covers ~dozens of configurations."""
    default = build_two_message_config()
    res = search_deadlock(SystemSpec.uniform(default.checker_messages(), budget=0))
    default_dead = res.deadlock_reachable

    first_ok = False
    replay_ok = False
    if res.witness is not None:
        # which message successfully injected first?
        first: str | None = None
        for actions in res.witness.steps:
            for i, act in enumerate(actions):
                if act == "try":
                    first = res.witness.spec.messages[i].tag
                    break
            if first:
                break
        first_ok = first == "M1"  # M1 has the longer approach by construction
        sim = replay_witness(
            res.witness, default.network, default.routing, default.message_pairs
        )
        replay_ok = sim.deadlocked

    rows: list[dict[str, object]] = []
    for d1, d2 in itertools.product(approach_range, repeat=2):
        for h in hold_range:
            cfg = build_two_message_config(
                approach_1=d1, approach_2=d2, hold_1=h, hold_2=h
            )
            r = search_deadlock(
                SystemSpec.uniform(cfg.checker_messages(), budget=0),
                find_witness=False,
            )
            rows.append(
                {
                    "d1": d1,
                    "d2": d2,
                    "hold": h,
                    "deadlock": r.deadlock_reachable,
                    "states": r.states_explored,
                }
            )
    return Fig2Result(
        default_deadlocks=default_dead,
        longer_approach_injected_first=first_ok,
        replay_deadlocked=replay_ok,
        sweep_rows=rows,
    )
