"""Plain-text table rendering for experiment output."""

from __future__ import annotations

from collections.abc import Mapping, Sequence


def render_table(rows: Sequence[Mapping[str, object]], *, title: str | None = None) -> str:
    """Render a list of uniform dict rows as an aligned text table."""
    if not rows:
        return (title + "\n" if title else "") + "(no rows)"
    cols = list(rows[0].keys())
    widths = {c: len(str(c)) for c in cols}
    formatted: list[list[str]] = []
    for row in rows:
        cells = []
        for c in cols:
            v = row.get(c, "")
            if isinstance(v, float):
                s = f"{v:.3g}"
            else:
                s = str(v)
            widths[c] = max(widths[c], len(s))
            cells.append(s)
        formatted.append(cells)
    lines = []
    if title:
        lines.append(title)
    header = "  ".join(str(c).ljust(widths[c]) for c in cols)
    lines.append(header)
    lines.append("-" * len(header))
    for cells in formatted:
        lines.append("  ".join(s.ljust(widths[c]) for s, c in zip(cells, cols)))
    return "\n".join(lines)


def render_kv(pairs: Mapping[str, object], *, title: str | None = None) -> str:
    """Render a key/value mapping as aligned text."""
    width = max((len(k) for k in pairs), default=0)
    lines = []
    if title:
        lines.append(title)
    for k, v in pairs.items():
        lines.append(f"{k.ljust(width)} : {v}")
    return "\n".join(lines)
