"""Experiment E1 -- Figure 1 + Theorem 1.

Reproduces, on the reconstructed Cyclic Dependency network:

1. the CDG contains exactly one cycle (the 14-channel ring);
2. the routing algorithm is connected and oblivious but *not* coherent,
   *not* suffix-closed, *not* minimal and *not* of the ``N x N -> C`` form
   (so none of Corollaries 1-3 apply to it);
3. no Dally--Seitz numbering exists (the classical certificate fails);
4. exhaustive search at stall budget 0 finds **no** reachable deadlock --
   Theorem 1 -- including with extra message copies and longer messages;
5. the analytic Theorem 1 timing model agrees (no simple schedule exists);
6. a small positive stall budget makes the very same cycle deadlock
   (the property Section 6 then engineers away), and the found witness
   replays to a real deadlock on the flit-level simulator.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis import SystemSpec, search_deadlock
from repro.analysis.delay import min_delay_to_deadlock
from repro.analysis.schedules import replay_witness
from repro.analysis.state import CheckerMessage
from repro.cdg import build_cdg, cycle_summary
from repro.core.cyclic_dependency import FIG1_MESSAGES, build_cyclic_dependency_network
from repro.core.specs import CycleMessageSpec
from repro.core.theory import analytic_schedule_feasible, earliest_blocking_analysis
from repro.routing.properties import analyze_properties


@dataclass
class Fig1Result:
    cdg_summary: dict[str, object]
    properties: dict[str, object]
    unreachable_at_sync: bool
    unreachable_with_copies: bool
    unreachable_longer_messages: bool
    analytic_feasible: bool
    min_delay_to_deadlock: int | None
    replay_deadlocked: bool
    states_explored: int
    flow_model_certifies: bool = False  # Lin-McKinley-Ni must come up short
    narrative: list[str] = field(default_factory=list)

    @property
    def matches_paper(self) -> bool:
        """The headline claims of Section 4 all hold."""
        return (
            not self.cdg_summary["acyclic"]
            and self.cdg_summary["num_cycles"] == 1
            and self.unreachable_at_sync
            and self.unreachable_with_copies
            and not self.analytic_feasible
            and self.min_delay_to_deadlock is not None
            and self.replay_deadlocked
            and not self.flow_model_certifies
        )

    def summary_rows(self) -> list[dict[str, object]]:
        return [
            {"check": "CDG has exactly one cycle (len 14)",
             "paper": True,
             "measured": (not self.cdg_summary["acyclic"]) and self.cdg_summary["num_cycles"] == 1},
            {"check": "routing coherent", "paper": False,
             "measured": self.properties["coherent"]},
            {"check": "routing suffix-closed", "paper": False,
             "measured": self.properties["suffix-closed"]},
            {"check": "routing NxN->C form", "paper": False,
             "measured": self.properties["NxN->C form"]},
            {"check": "deadlock reachable at sync (Thm 1)", "paper": False,
             "measured": not self.unreachable_at_sync},
            {"check": "deadlock reachable with extra copies", "paper": False,
             "measured": not self.unreachable_with_copies},
            {"check": "analytic schedule exists", "paper": False,
             "measured": self.analytic_feasible},
            {"check": "deadlock with small in-flight delay (Sec 6)", "paper": True,
             "measured": self.min_delay_to_deadlock is not None},
            {"check": "flow model (Lin et al.) certifies it", "paper": False,
             "measured": self.flow_model_certifies},
        ]


def run_fig1_experiment(
    *,
    max_delay: int = 6,
    with_copies: bool = True,
    search_jobs: int = 1,
    engine: str | None = None,
) -> Fig1Result:
    """Run the full E1 battery.  Takes a few seconds.

    ``search_jobs`` fans the verdict-only reachability searches (the extra
    copies / longer messages checks and the delay sweep) out across worker
    processes; the witness searches stay serial.
    """
    cdn = build_cyclic_dependency_network()
    alg = cdn.algorithm
    cdg = build_cdg(alg)
    summary = cycle_summary(cdg)

    pairs = list(cdn.message_pairs.values())
    props = analyze_properties(alg, pairs + [("P3", "D1"), ("Src", "X1"), ("N*", "D2")])

    msgs = cdn.checker_messages()
    sync = search_deadlock(SystemSpec.uniform(msgs, budget=0), engine=engine)

    copies_ok = True
    if with_copies:
        extra = msgs + [
            CheckerMessage(msgs[1].path, msgs[1].length, "M2copy"),
            CheckerMessage(msgs[3].path, msgs[3].length, "M4copy"),
        ]
        copies_ok = not search_deadlock(
            SystemSpec.uniform(extra, budget=0),
            max_states=8_000_000,
            find_witness=False,
            jobs=search_jobs,
            engine=engine,
        ).deadlock_reachable

    longer = [CheckerMessage(m.path, m.length + 1, m.tag) for m in msgs]
    longer_ok = not search_deadlock(
        SystemSpec.uniform(longer, budget=0),
        find_witness=False,
        jobs=search_jobs,
        engine=engine,
    ).deadlock_reachable

    # analytic model on the sparse geometry
    cycle_specs = [
        CycleMessageSpec(
            approach_len=len(info["approach"]) + 1,
            hold_len=info["min_length"],
            label=tag,
        )
        for tag, info in FIG1_MESSAGES.items()
    ]
    analytic = analytic_schedule_feasible(cycle_specs)

    delay = min_delay_to_deadlock(
        msgs, max_delay=max_delay, search_jobs=search_jobs, engine=engine
    )
    replay_ok = False
    if delay.min_delay is not None:
        witness = delay.results[delay.min_delay].witness
        res = replay_witness(witness, cdn.network, cdn.routing, pairs)
        replay_ok = res.deadlocked

    from repro.cdg.flow_model import deadlock_immune_channels

    flow = deadlock_immune_channels(alg)

    return Fig1Result(
        cdg_summary=summary,
        properties=props.summary_row(),
        unreachable_at_sync=not sync.deadlock_reachable,
        unreachable_with_copies=copies_ok,
        unreachable_longer_messages=longer_ok,
        analytic_feasible=analytic.feasible,
        min_delay_to_deadlock=delay.min_delay,
        replay_deadlocked=replay_ok,
        states_explored=sync.states_explored,
        flow_model_certifies=flow.certifies_deadlock_freedom,
        narrative=earliest_blocking_analysis(cycle_specs),
    )
