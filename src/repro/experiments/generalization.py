"""Experiment E6 -- Section 6 generalisation.

Measures, for the family ``Gen(m)`` (``Gen(1)`` = Figure 1 geometry), the
minimum per-message stall budget Δ*(m) at which a deadlock becomes
reachable.  The paper's claim: the configuration "requires at least one
message in the cycle to be delayed at least m clock cycles", i.e. Δ*(m)
grows linearly without bound.  Measured result (recorded in
EXPERIMENTS.md): Δ*(m) = m exactly for m = 1..4.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Sequence

from repro.analysis.delay import min_delay_to_deadlock
from repro.core.generalized import generalized_messages


@dataclass
class GeneralizationResult:
    profile: dict[int, int | None] = field(default_factory=dict)

    @property
    def strictly_increasing(self) -> bool:
        vals = [v for _, v in sorted(self.profile.items())]
        return all(v is not None for v in vals) and all(
            b > a for a, b in zip(vals, vals[1:])  # type: ignore[operator]
        )

    @property
    def deadlock_free_under_synchrony(self) -> bool:
        """Every tested Gen(m) is a false resource cycle at Δ = 0."""
        return all(v is None or v > 0 for v in self.profile.values())

    def rows(self) -> list[dict[str, object]]:
        return [
            {"m": m, "min delay to deadlock": d if d is not None else f">max"}
            for m, d in sorted(self.profile.items())
        ]


def run_generalization_experiment(
    params: Sequence[int] = (1, 2, 3),
    *,
    max_delay: int = 12,
    max_states: int = 30_000_000,
) -> GeneralizationResult:
    """Sweep Δ*(m).  ``m = 3`` takes ~1 minute; larger values grow fast.

    ``m = 0`` degenerates (even holds equal even approaches, so the
    odd/even asymmetry the construction relies on disappears and the cycle
    deadlocks under synchrony); the family is meaningful for ``m >= 1``.
    """
    profile: dict[int, int | None] = {}
    for m in params:
        res = min_delay_to_deadlock(
            generalized_messages(m), max_delay=max_delay, max_states=max_states
        )
        profile[m] = res.min_delay
    return GeneralizationResult(profile=profile)
