"""Experiment V1 -- substrate validation traffic runs.

Not a paper figure: the paper's evaluation is analytic.  These runs
validate the flit-level simulator in the regimes the paper's model assumes:

* dimension-order and turn-model routing on a mesh deliver all traffic
  (deadlock-free) with latency rising toward saturation as load grows;
* dateline-VC torus routing likewise never deadlocks;
* the unrestricted clockwise ring deadlocks under moderate load -- the
  simulator must catch real deadlocks, or its negative results elsewhere
  would be meaningless.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Sequence

from repro.routing import (
    clockwise_ring,
    dateline_torus,
    dimension_order_mesh,
    west_first_mesh,
)
from repro.sim import SimConfig, Simulator
from repro.sim.traffic import uniform_random_traffic
from repro.topology import mesh, ring, torus


@dataclass
class TrafficPoint:
    algorithm: str
    rate: float
    delivered: int
    total: int
    deadlocked: bool
    mean_latency: float
    throughput: float

    def row(self) -> dict[str, object]:
        return {
            "algorithm": self.algorithm,
            "rate": self.rate,
            "delivered": f"{self.delivered}/{self.total}",
            "deadlock": self.deadlocked,
            "mean latency": round(self.mean_latency, 1),
            "flits/cycle": round(self.throughput, 2),
        }


def _run(name, net, fn, rate, *, cycles=300, length=4, seed=11, max_cycles=60_000) -> TrafficPoint:
    specs = uniform_random_traffic(net, rate=rate, cycles=cycles, length=length, seed=seed)
    sim = Simulator(net, fn, specs, config=SimConfig(max_cycles=max_cycles))
    res = sim.run()
    return TrafficPoint(
        algorithm=name,
        rate=rate,
        delivered=res.delivered,
        total=res.total,
        deadlocked=res.deadlocked,
        mean_latency=res.stats.mean_latency(),
        throughput=res.stats.throughput_flits_per_cycle(),
    )


def run_traffic_experiment(
    rates: Sequence[float] = (0.02, 0.05, 0.1),
    *,
    mesh_dims: tuple[int, int] = (8, 8),
    cycles: int = 300,
) -> list[TrafficPoint]:
    """Latency/throughput points for the mesh/torus baselines."""
    points: list[TrafficPoint] = []
    m = mesh(mesh_dims)
    dor = dimension_order_mesh(m, 2)
    wf = west_first_mesh(m)
    t = torus((4, 4), vcs=2)
    dt = dateline_torus(t, (4, 4))
    for rate in rates:
        points.append(_run(f"DOR mesh {mesh_dims[0]}x{mesh_dims[1]}", m, dor, rate, cycles=cycles))
        points.append(_run(f"west-first mesh {mesh_dims[0]}x{mesh_dims[1]}", m, wf, rate, cycles=cycles))
        points.append(_run("dateline torus 4x4", t, dt, rate, cycles=cycles))
    return points


def run_ring_deadlock_probe(
    *, n: int = 8, rate: float = 0.08, cycles: int = 400, length: int = 10, seed: int = 3
) -> TrafficPoint:
    """The positive control: unrestricted ring traffic must deadlock."""
    net = ring(n)
    fn = clockwise_ring(net, n)
    return _run(f"cw-ring{n}", net, fn, rate, cycles=cycles, length=length, seed=seed)
