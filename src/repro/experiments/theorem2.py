"""Experiment E4 -- Theorem 2 and Corollaries 1-3.

Theorem 2: a cycle whose shared channels lie *within* the cycle always
yields a reachable deadlock.  Verified over a family of overlapping-ring
configurations.

Corollaries 1-3: oblivious algorithms of the ``N x N -> C`` form,
suffix-closed algorithms, and coherent algorithms have no unreachable
cyclic configurations -- i.e. for those baselines every CDG cycle (if any)
is a reachable deadlock.  Verified on:

* the unrestricted clockwise ring (cyclic CDG, ``N x N -> C``, coherent):
  its single cycle must classify as *deadlock*;
* dimension-order mesh, e-cube hypercube, dateline torus (coherent or
  suffix-closed): acyclic CDGs, so the corollaries hold vacuously and the
  Dally--Seitz numbering certificate exists.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis import SystemSpec, search_deadlock
from repro.analysis.classify import classify_cycle
from repro.cdg import build_cdg, dally_seitz_numbering, find_cycles, is_acyclic, verify_numbering
from repro.core.within_cycle import OverlapSpec, build_overlapping_ring, theorem2_default
from repro.routing import (
    RoutingAlgorithm,
    clockwise_ring,
    dateline_torus,
    dimension_order_mesh,
    ecube_hypercube,
)
from repro.routing.properties import analyze_properties
from repro.topology import hypercube, mesh, ring, torus


@dataclass
class Theorem2Result:
    overlap_rows: list[dict[str, object]] = field(default_factory=list)

    @property
    def all_deadlock(self) -> bool:
        return all(r["deadlock"] for r in self.overlap_rows)


def run_theorem2_experiment() -> Theorem2Result:
    """Every within-cycle-sharing configuration must deadlock."""
    configs = [
        ("overlap8x4", theorem2_default()),
        (
            "overlap6x3",
            build_overlapping_ring(
                6,
                [
                    OverlapSpec(entry_pos=0, run_len=3),
                    OverlapSpec(entry_pos=2, run_len=3),
                    OverlapSpec(entry_pos=4, run_len=3),
                ],
            ),
        ),
        (
            "overlap10x2-deep",
            build_overlapping_ring(
                10,
                [
                    OverlapSpec(entry_pos=0, run_len=7),
                    OverlapSpec(entry_pos=5, run_len=7),
                ],
            ),
        ),
        (
            "overlap9x3-uneven",
            build_overlapping_ring(
                9,
                [
                    OverlapSpec(entry_pos=0, run_len=4, approach_len=2),
                    OverlapSpec(entry_pos=3, run_len=5, approach_len=1),
                    OverlapSpec(entry_pos=7, run_len=3, approach_len=3),
                ],
            ),
        ),
    ]
    rows: list[dict[str, object]] = []
    for name, cfg in configs:
        res = search_deadlock(
            SystemSpec.uniform(cfg.checker_messages(), budget=0), find_witness=False
        )
        rows.append(
            {
                "config": name,
                "messages": len(cfg.message_pairs),
                "ring": len(cfg.cycle_channels),
                "deadlock": res.deadlock_reachable,
                "states": res.states_explored,
            }
        )
    return Theorem2Result(overlap_rows=rows)


def run_corollary_baselines(*, ring_n: int = 5) -> list[dict[str, object]]:
    """Property + cycle-classification table for the classic baselines."""
    rows: list[dict[str, object]] = []

    # unrestricted ring: cyclic CDG, must classify as reachable deadlock
    rnet = ring(ring_n)
    ralg = RoutingAlgorithm(clockwise_ring(rnet, ring_n))
    rprops = analyze_properties(ralg)
    rcdg = build_cdg(ralg)
    cycles = find_cycles(rcdg)
    assert len(cycles.cycles) == 1
    cls = classify_cycle(ralg, cycles.cycles[0], length_slack=0, extra_copies=1)
    rows.append(
        {
            "algorithm": f"cw-ring{ring_n}",
            "coherent": rprops.coherent,
            "NxN->C": rprops.input_channel_independent,
            "cdg acyclic": False,
            "cycles": 1,
            "classification": "deadlock" if cls.deadlock_reachable else "unreachable",
        }
    )

    for name, net, fn, ndims in [
        ("DOR mesh 4x4", mesh((4, 4)), None, 2),
        ("ecube hcube3", hypercube(3), None, 3),
        ("dateline torus 4x4", torus((4, 4), vcs=2), None, 2),
    ]:
        if name.startswith("DOR"):
            f = dimension_order_mesh(net, 2)
        elif name.startswith("ecube"):
            f = ecube_hypercube(net, 3)
        else:
            f = dateline_torus(net, (4, 4))
        alg = RoutingAlgorithm(f)
        props = analyze_properties(alg)
        cdg = build_cdg(alg)
        acyclic = is_acyclic(cdg)
        verdict = "no cycles"
        if acyclic:
            numbering = dally_seitz_numbering(cdg)
            assert verify_numbering(cdg, numbering)
        rows.append(
            {
                "algorithm": name,
                "coherent": props.coherent,
                "NxN->C": props.input_channel_independent,
                "cdg acyclic": acyclic,
                "cycles": 0 if acyclic else "?",
                "classification": verdict,
            }
        )
    return rows
