"""Experiment drivers: one per paper figure/theorem (see DESIGN.md sec. 4).

Each driver returns structured rows; :mod:`report` renders them as the
text tables printed by ``benchmarks/`` and ``examples/``.  Keeping the
drivers importable (rather than buried in bench files) lets tests assert
the *scientific* claims independently of benchmark timing plumbing.
"""

from repro.experiments.fig1 import run_fig1_experiment, Fig1Result
from repro.experiments.fig2 import run_fig2_experiment, Fig2Result
from repro.experiments.fig3 import run_fig3_experiment, Fig3PanelResult
from repro.experiments.theorem2 import run_theorem2_experiment, run_corollary_baselines
from repro.experiments.theorem3 import run_theorem3_experiment
from repro.experiments.generalization import run_generalization_experiment
from repro.experiments.traffic import run_traffic_experiment, TrafficPoint
from repro.experiments.report import render_table, render_kv

__all__ = [
    "run_fig1_experiment",
    "Fig1Result",
    "run_fig2_experiment",
    "Fig2Result",
    "run_fig3_experiment",
    "Fig3PanelResult",
    "run_theorem2_experiment",
    "run_corollary_baselines",
    "run_theorem3_experiment",
    "run_generalization_experiment",
    "run_traffic_experiment",
    "TrafficPoint",
    "render_table",
    "render_kv",
]
