"""Experiment E5 -- Theorem 3 (minimal oblivious routing).

Theorem 3 says minimal oblivious routing admits no single-shared-channel
unreachable cycle when every cycle message uses the shared channel.  The
experiment (a) sweeps the shared-cycle family recording
(minimal?, classification) per configuration and asserts the conjunction
*minimal AND unreachable* never occurs, and (b) certifies the Figure 1
algorithm as nonminimal, which is why it may -- and does -- have one.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.minimal_search import (
    MinimalSweepResult,
    fig1_nonminimality_certificate,
    sweep_minimal_configs,
)


@dataclass
class Theorem3Result:
    sweep: MinimalSweepResult
    fig1_slack: dict[str, int]

    @property
    def theorem_holds(self) -> bool:
        return not self.sweep.any_violation

    @property
    def fig1_certified_nonminimal(self) -> bool:
        return all(v > 0 for v in self.fig1_slack.values())

    def summary(self) -> dict[str, object]:
        out: dict[str, object] = dict(self.sweep.summary())
        out["fig1 nonminimal"] = self.fig1_certified_nonminimal
        return out


def run_theorem3_experiment(
    *,
    num_messages: int = 3,
    approach_range: tuple[int, ...] = (1, 2, 3),
    hold_range: tuple[int, ...] = (1, 2, 3),
    limit: int | None = None,
) -> Theorem3Result:
    sweep = sweep_minimal_configs(
        num_messages=num_messages,
        approach_range=approach_range,
        hold_range=hold_range,
        limit=limit,
    )
    return Theorem3Result(sweep=sweep, fig1_slack=fig1_nonminimality_certificate())
