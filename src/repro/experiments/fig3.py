"""Experiment E3 -- Figure 3 + Theorem 5.

For each of the six reconstructed panels:

1. classify by exhaustive search (ground truth);
2. evaluate the eight Theorem 5 conditions;
3. compare both against the paper's stated classification
   ((a), (b) unreachable; (c)--(f) deadlock).

Additionally a random parameter sweep measures the agreement rate between
the condition set (partly reconstructed from OCR-damaged text -- see
``repro/core/conditions.py``) and the search, over configurations within
Theorem 5's hypotheses.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.analysis import classify_configuration
from repro.core.conditions import TheoremFiveInput, evaluate_conditions
from repro.core.specs import CycleMessageSpec, build_shared_cycle
from repro.core.three_message import FIG3_PANELS, build_three_message_config


@dataclass
class Fig3PanelResult:
    panel: str
    expected_unreachable: bool
    search_unreachable: bool
    conditions_predict_unreachable: bool
    failed_conditions: list[int]
    states_explored: int

    @property
    def search_matches_paper(self) -> bool:
        return self.search_unreachable == self.expected_unreachable

    @property
    def conditions_match_search(self) -> bool:
        return self.conditions_predict_unreachable == self.search_unreachable

    def row(self) -> dict[str, object]:
        return {
            "panel": self.panel,
            "paper": "unreachable" if self.expected_unreachable else "deadlock",
            "search": "unreachable" if self.search_unreachable else "deadlock",
            "thm5-conds": "unreachable" if self.conditions_predict_unreachable else "deadlock",
            "failed conds": ",".join(map(str, self.failed_conditions)) or "-",
            "states": self.states_explored,
        }


def classify_panel(panel: str, *, max_states: int = 20_000_000) -> Fig3PanelResult:
    params = FIG3_PANELS[panel]
    construction = build_three_message_config(params)
    reachable, res = classify_configuration(
        construction.checker_messages(), budget=0, copy_depth=1, max_states=max_states
    )
    report = evaluate_conditions(TheoremFiveInput.from_specs(list(params.specs)))
    return Fig3PanelResult(
        panel=panel,
        expected_unreachable=params.expected_unreachable,
        search_unreachable=not reachable,
        conditions_predict_unreachable=report.all_hold,
        failed_conditions=report.failed(),
        states_explored=res.states_explored,
    )


def run_fig3_experiment(*, max_states: int = 4_000_000) -> list[Fig3PanelResult]:
    """Classify all six panels."""
    return [classify_panel(p, max_states=max_states) for p in FIG3_PANELS]


@dataclass
class SweepAgreement:
    total: int
    agree: int
    disagreements: list[dict[str, object]] = field(default_factory=list)

    @property
    def rate(self) -> float:
        return self.agree / self.total if self.total else 1.0


def run_condition_sweep(
    *,
    samples: int = 40,
    seed: int = 7,
    max_states: int = 2_000_000,
) -> SweepAgreement:
    """Random three-shared-message configurations: conditions vs search.

    Configurations are drawn within Theorem 5's hypotheses (three messages
    sharing the channel, distinct approach distances).  Reports the
    agreement rate -- EXPERIMENTS.md records it honestly since conditions
    6-8 are reconstructions.
    """
    rng = random.Random(seed)
    total = agree = 0
    disagreements: list[dict[str, object]] = []
    seen: set[tuple] = set()
    while total < samples:
        ds = rng.sample(range(1, 6), 3)
        hs = [rng.randint(1, 6) for _ in range(3)]
        key = (tuple(ds), tuple(hs))
        if key in seen:
            continue
        seen.add(key)
        specs = [
            CycleMessageSpec(approach_len=d, hold_len=h, label=f"S{i}")
            for i, (d, h) in enumerate(zip(ds, hs))
        ]
        construction = build_shared_cycle(specs, name="sweep")
        reachable, _res = classify_configuration(
            construction.checker_messages(),
            budget=0,
            copy_depth=1,
            max_states=max_states,
        )
        report = evaluate_conditions(TheoremFiveInput.from_specs(specs))
        total += 1
        if report.all_hold == (not reachable):
            agree += 1
        else:
            disagreements.append(
                {
                    "d": tuple(ds),
                    "hold": tuple(hs),
                    "search": "unreachable" if not reachable else "deadlock",
                    "conds": "unreachable" if report.all_hold else "deadlock",
                    "failed": report.failed(),
                }
            )
    return SweepAgreement(total=total, agree=agree, disagreements=disagreements)
