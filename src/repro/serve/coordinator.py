"""Shard coordinator: hand out ``--shard i/n`` ranges, merge worker ledgers.

``campaign run --shard i/n`` has always made fan-out *possible* --
hash-range shards are disjoint and content-stable -- but every operator
had to pick indices by hand and union the ledgers afterwards.  The
coordinator closes that loop for a fleet of workers:

* **register**: a worker announces itself and receives a deterministic
  assignment ``{spec, shard: "i/n"}``.  Shards are handed out
  least-loaded-first, so N workers on an N-shard spec cover it exactly
  once, extra workers double up on the least-covered shard (harmless:
  task execution is idempotent and cached), and re-registering the same
  worker id returns the same assignment (crash-restart safe).
* **report**: the worker posts its ``(task, result)`` pairs.  The
  coordinator folds them into the merged ledger, the shared cache
  (live successes only -- cache hits were already there), and the
  distinct-task union that mirrors ``campaign status``'s merged view.
* **status**: which shards are covered, who reported, and the union's
  ok/failed counts.

The coordinator is plain synchronous code guarded by one lock; the
serve layer calls it from request handlers, tests call it directly.
"""

from __future__ import annotations

import threading
import time
from collections import Counter
from dataclasses import dataclass
from pathlib import Path
from typing import Any

from repro.campaign.cache import CacheBackend
from repro.campaign.ledger import RunLedger
from repro.campaign.tasks import CampaignTask, TaskResult


@dataclass
class WorkerSlot:
    """One registered worker and what it has contributed."""

    worker_id: str
    shard_index: int
    registered_at: float
    reported_at: float | None = None
    results: int = 0
    ok: int = 0
    failed: int = 0

    def to_json(self) -> dict[str, Any]:
        return {
            "worker": self.worker_id,
            "shard_index": self.shard_index,
            "registered_at": round(self.registered_at, 3),
            "reported_at": (
                None if self.reported_at is None else round(self.reported_at, 3)
            ),
            "results": self.results,
            "ok": self.ok,
            "failed": self.failed,
        }


class ShardCoordinator:
    """Assigns shard ranges to workers and merges what they bring back."""

    def __init__(
        self,
        *,
        spec: str,
        shards: int,
        cache: CacheBackend | None = None,
        ledger_path: str | Path | None = None,
    ) -> None:
        if shards < 1:
            raise ValueError(f"shards must be >= 1, got {shards}")
        self.spec = spec
        self.shards = shards
        self.cache = cache
        self._ledger = None if ledger_path is None else RunLedger(ledger_path)
        self.ledger_path = None if ledger_path is None else str(ledger_path)
        self._lock = threading.Lock()
        self._workers: dict[str, WorkerSlot] = {}
        self._merged: dict[str, bool] = {}  # task_hash -> ok of latest report

    def _next_index(self) -> int:
        counts = Counter(slot.shard_index for slot in self._workers.values())
        return min(range(1, self.shards + 1), key=lambda i: (counts.get(i, 0), i))

    def register(self, worker_id: str) -> dict[str, Any]:
        """Assign (or re-issue) a shard; the reply is the work order."""
        if not worker_id or not isinstance(worker_id, str):
            raise ValueError("worker_id must be a non-empty string")
        with self._lock:
            slot = self._workers.get(worker_id)
            if slot is None:
                slot = WorkerSlot(
                    worker_id=worker_id,
                    shard_index=self._next_index(),
                    registered_at=time.time(),
                )
                self._workers[worker_id] = slot
            return {
                "worker": worker_id,
                "spec": self.spec,
                "shard": f"{slot.shard_index}/{self.shards}",
            }

    def report(self, worker_id: str, entries: list[dict[str, Any]]) -> dict[str, Any]:
        """Merge one worker's ``[{"task": ..., "result": ...}]`` batch.

        Each entry's task hash is cross-checked against its result (a
        worker on a diverged schema must fail loudly, not poison the
        shared cache), then recorded in the merged ledger and -- for
        live successes -- written through to the shared cache.
        """
        with self._lock:
            slot = self._workers.get(worker_id)
            if slot is None:
                raise KeyError(f"unregistered worker {worker_id!r}; register first")
            merged = 0
            for entry in entries:
                result = TaskResult.from_json(entry["result"])
                task = (
                    CampaignTask.from_json(entry["task"])
                    if entry.get("task")
                    else None
                )
                if task is not None and task.task_hash != result.task_hash:
                    raise ValueError(
                        f"task/result hash mismatch from {worker_id!r}: "
                        f"{task.task_hash[:12]} != {result.task_hash[:12]} "
                        "(schema drift between worker and coordinator?)"
                    )
                self._merged[result.task_hash] = result.ok
                slot.results += 1
                if result.ok:
                    slot.ok += 1
                else:
                    slot.failed += 1
                if self._ledger is not None:
                    self._ledger.record(result)
                if (
                    self.cache is not None
                    and task is not None
                    and result.source == "live"
                ):
                    self.cache.put(task, result)
                merged += 1
            slot.reported_at = time.time()
            return {
                "worker": worker_id,
                "merged": merged,
                "distinct_tasks": len(self._merged),
            }

    def status(self) -> dict[str, Any]:
        with self._lock:
            assigned = sorted({s.shard_index for s in self._workers.values()})
            ok = sum(1 for good in self._merged.values() if good)
            return {
                "spec": self.spec,
                "shards": self.shards,
                "assigned_shards": assigned,
                "unassigned_shards": [
                    i for i in range(1, self.shards + 1) if i not in assigned
                ],
                "workers": [
                    slot.to_json()
                    for slot in sorted(
                        self._workers.values(), key=lambda s: s.registered_at
                    )
                ],
                "distinct_tasks": len(self._merged),
                "ok": ok,
                "failed": len(self._merged) - ok,
                "ledger": self.ledger_path,
            }

    def close(self) -> None:
        if self._ledger is not None:
            self._ledger.close()
