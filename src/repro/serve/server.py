"""``python -m repro serve``: verification-as-a-service over asyncio HTTP/JSON.

A long-lived, stdlib-only HTTP server wrapping the campaign machinery so
verification queries become service calls:

========================== ===========================================
``POST /v1/search``        deadlock reachability for one scenario;
                           byte-identical to ``repro search --json``
``POST /v1/classify``      full-adversary classification
``POST /v1/lint``          static linter verdict + diagnostics
``POST /v1/campaign``      run a whole spec (optionally one shard)
                           through the batcher; returns the summary
``GET  /v1/status``        server / batcher / per-tier cache stats,
                           integrity scans, coordinator state
``GET  /v1/events``        live telemetry stream as newline-delimited
                           JSON (docs/OBSERVABILITY.md schema)
``GET  /metrics``          Prometheus text exposition of the live
                           registry (counters, gauges, histograms,
                           span summaries)
``POST /v1/coordinator/register``  claim a ``--shard i/n`` work order
``POST /v1/coordinator/report``    merge a worker's results back
``GET  /v1/coordinator/status``    fleet coverage + merged union
========================== ===========================================

Requests are validated against the task schema (registered scenario,
JSON-object params, typed analysis knobs) and content-addressed with the
existing ``task_hash``; answers come from the tiered cache when
possible, otherwise through the :class:`~repro.serve.batcher.MicroBatcher`
(micro-batching window + in-flight dedup, so N concurrent identical
cold queries execute exactly once).  Task execution runs on a
single-lane thread executor; ``--jobs`` fans each batch out through the
campaign process pool from there, keeping the event loop free to answer
cache hits in microseconds.

Task endpoints attach provenance headers instead of polluting the
verdict payload (which must stay CLI-identical): ``X-Repro-Source``
(``cache`` / ``inflight`` / ``live``), ``X-Repro-Task-Hash``,
``X-Repro-Wall-Time``.

Distributed tracing: an ``X-Repro-Trace`` request header (W3C
traceparent shaped, see ``repro.obs.trace``) joins the request to the
caller's trace -- every event the request produces, including campaign
pool worker events, carries the caller's trace id.  Without the header
each request starts a fresh trace.
"""

from __future__ import annotations

import asyncio
import json
import os
import threading
import time
from collections import Counter
from collections.abc import Callable
from concurrent.futures import ThreadPoolExecutor
from contextlib import nullcontext, suppress
from dataclasses import dataclass, field
from typing import Any
from urllib.parse import parse_qs

import repro.obs as obs
from repro.campaign.cache import (
    CacheBackend,
    MemoryLRUCache,
    TieredCache,
    make_backend,
)
from repro.campaign.ledger import CampaignSummary
from repro.campaign.runner import RunnerConfig
from repro.campaign.scenarios import scenario_names
from repro.campaign.specs import build_spec, spec_names
from repro.campaign.tasks import CampaignTask, parse_shard, shard_tasks
from repro.serve.batcher import MicroBatcher
from repro.serve.coordinator import ShardCoordinator
from repro.serve.payloads import (
    classify_payload_from_result,
    dumps,
    lint_payload_from_result,
    search_payload_from_result,
)

SERVER_NAME = "repro-serve"

_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    500: "Internal Server Error",
    502: "Bad Gateway",
    503: "Service Unavailable",
}

#: analysis knobs each endpoint accepts at the body's top level, with
#: the CLI's defaults -- they merge into the task params (and therefore
#: the content hash), so "same question" always means "same cache key"
_KNOBS: dict[str, dict[str, int]] = {
    "reachability": {"budget": 0, "max_states": 4_000_000},
    "classify": {"budget": 0, "max_states": 2_000_000, "length_slack": 0,
                 "extra_copies": 1},
    "lint": {"max_cycles": 10_000},
}


class ApiError(Exception):
    """A structured 4xx/5xx reply."""

    def __init__(self, status: int, message: str, **details: Any) -> None:
        super().__init__(message)
        self.status = status
        self.message = message
        self.details = details

    def payload(self) -> dict[str, Any]:
        out: dict[str, Any] = {"error": self.message, "status": self.status}
        out.update(self.details)
        return out


@dataclass
class _Request:
    method: str
    path: str
    query: dict[str, str]
    headers: dict[str, str]
    body: bytes

    def json(self) -> dict[str, Any]:
        if not self.body:
            return {}
        try:
            parsed = json.loads(self.body.decode("utf-8"))
        except (ValueError, UnicodeDecodeError) as exc:
            raise ApiError(400, f"request body is not valid JSON: {exc}") from None
        if not isinstance(parsed, dict):
            raise ApiError(400, "request body must be a JSON object")
        return parsed


@dataclass
class ServeConfig:
    """Everything ``python -m repro serve`` can tune."""

    host: str = "127.0.0.1"
    port: int = 8765
    #: make_backend spec for the durable tier (dir:/sqlite:/memory[:N]/path)
    cache_backend: str | None = None
    #: entries held by the in-memory hot tier; 0 disables tiering
    hot_capacity: int = 1024
    #: micro-batching window in seconds (0 = flush on next loop tick)
    window: float = 0.02
    jobs: int = 1
    search_jobs: int = 1
    #: search engine (fast/vector/kernel/auto/reference) for in-task
    #: searches; None defers to REPRO_SEARCH_ENGINE / the default
    search_engine: str | None = None
    retries: int = 0
    task_timeout: float | None = None
    #: coordinator work order (enabled when shards >= 1)
    spec: str = "paper-battery"
    shards: int = 0
    ledger: str | None = None
    telemetry: bool = True


def _json_response(
    status: int, payload: Any, headers: dict[str, str] | None = None
) -> bytes:
    body = (dumps(payload) + "\n").encode("utf-8")
    lines = [
        f"HTTP/1.1 {status} {_REASONS.get(status, 'OK')}",
        f"Server: {SERVER_NAME}",
        "Content-Type: application/json",
        f"Content-Length: {len(body)}",
        "Connection: close",
    ]
    for key, value in (headers or {}).items():
        lines.append(f"{key}: {value}")
    lines += ["", ""]
    return "\r\n".join(lines).encode("latin-1") + body


def _text_response(status: int, body: str, content_type: str) -> bytes:
    data = body.encode("utf-8")
    lines = [
        f"HTTP/1.1 {status} {_REASONS.get(status, 'OK')}",
        f"Server: {SERVER_NAME}",
        f"Content-Type: {content_type}",
        f"Content-Length: {len(data)}",
        "Connection: close",
        "",
        "",
    ]
    return "\r\n".join(lines).encode("latin-1") + data


def _serve_headers(result: Any, source: str) -> dict[str, str]:
    return {
        "X-Repro-Source": source,
        "X-Repro-Task-Hash": result.task_hash,
        "X-Repro-Wall-Time": f"{result.wall_time:.6f}",
    }


class ReproServer:
    """One serve instance: cache tiers, batcher, coordinator, HTTP front."""

    def __init__(self, config: ServeConfig | None = None) -> None:
        self.config = config or ServeConfig()
        cold = make_backend(self.config.cache_backend)
        self.cold: CacheBackend = cold
        self.cache: CacheBackend
        if self.config.hot_capacity > 0:
            self.cache = TieredCache(MemoryLRUCache(self.config.hot_capacity), cold)
        else:
            self.cache = cold
        self.runner_config = RunnerConfig(
            max_workers=self.config.jobs,
            retries=self.config.retries,
            task_timeout=self.config.task_timeout,
            search_jobs=self.config.search_jobs,
            engine=self.config.search_engine,
        )
        self.coordinator: ShardCoordinator | None = None
        if self.config.shards >= 1:
            self.coordinator = ShardCoordinator(
                spec=self.config.spec,
                shards=self.config.shards,
                cache=self.cache,
                ledger_path=self.config.ledger,
            )
        self.batcher: MicroBatcher | None = None
        self.host = self.config.host
        self.port = self.config.port
        self.started_at: float | None = None
        self.requests = 0
        self.by_endpoint: Counter[str] = Counter()
        self._subscribers: set[asyncio.Queue[dict[str, Any] | None]] = set()
        self._tel: obs.Telemetry | None = None
        self._tel_prev: obs.Telemetry | None = None
        self._env_prev: str | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._server: asyncio.AbstractServer | None = None
        self._executor: ThreadPoolExecutor | None = None
        self._stop: asyncio.Event | None = None
        self._ready = threading.Event()

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    async def start(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop = asyncio.Event()
        # single execution lane: overlapping batch flushes serialise here,
        # so at most one campaign wave (and one process pool) runs at once
        self._executor = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="repro-serve-batch"
        )
        if self.config.telemetry:
            self._env_prev = os.environ.get(obs.ENV_VAR)
            os.environ[obs.ENV_VAR] = "on"  # campaign pool workers inherit
            self._tel = obs.Telemetry(run_id=SERVER_NAME)
            self._tel_prev = obs.configure(self._tel)
            self._tel.add_sink(self._event_sink)
        self.batcher = MicroBatcher(
            cache=self.cache,
            config=self.runner_config,
            window=self.config.window,
            executor=self._executor,
            spec_name="serve",
        )
        self._server = await asyncio.start_server(
            self._handle, self.config.host, self.config.port
        )
        sock = self._server.sockets[0].getsockname()
        self.host, self.port = sock[0], sock[1]
        self.started_at = time.time()
        if self._tel is not None:
            self._tel.event("serve.start", host=self.host, port=self.port)
        self._ready.set()

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            with suppress(Exception):
                await self._server.wait_closed()
        for queue in list(self._subscribers):
            with suppress(asyncio.QueueFull):
                queue.put_nowait(None)
        if self._executor is not None:
            self._executor.shutdown(wait=False, cancel_futures=True)
        if self._tel is not None:
            self._tel.event("serve.stop")
            self._tel.remove_sink(self._event_sink)
            obs.configure(self._tel_prev)
            if self._env_prev is None:
                os.environ.pop(obs.ENV_VAR, None)
            else:
                os.environ[obs.ENV_VAR] = self._env_prev
            self._tel = None
        if self.coordinator is not None:
            self.coordinator.close()
        close = getattr(self.cold, "close", None)
        if callable(close):
            close()
        self._ready.clear()

    async def run_async(self, announce: Callable[[str], None] | None = None) -> None:
        await self.start()
        try:
            if announce is not None:
                announce(
                    f"{SERVER_NAME} listening on {self.url} "
                    f"(cache: {type(self.cold).__name__}, "
                    f"hot tier: {self.config.hot_capacity}, "
                    f"window: {self.config.window * 1000:.0f}ms, "
                    f"jobs: {self.config.jobs})"
                )
            assert self._stop is not None
            await self._stop.wait()
        finally:
            await self.stop()

    def run(self, announce: Callable[[str], None] | None = None) -> None:
        """Blocking entry point (the CLI's)."""
        asyncio.run(self.run_async(announce))

    def wait_ready(self, timeout: float = 10.0) -> bool:
        """Block (from another thread) until the server is accepting."""
        return self._ready.wait(timeout)

    def shutdown(self) -> None:
        """Request a stop from any thread."""
        loop, stop = self._loop, self._stop
        if loop is not None and stop is not None and not loop.is_closed():
            loop.call_soon_threadsafe(stop.set)

    # ------------------------------------------------------------------
    # telemetry fan-out
    # ------------------------------------------------------------------
    def _event_sink(self, event: dict[str, Any]) -> None:
        # sinks fire on the emitting thread (event loop *or* the batch
        # executor); hop onto the loop before touching subscriber queues
        loop = self._loop
        if loop is None or loop.is_closed():
            return
        loop.call_soon_threadsafe(self._fanout, event)

    def _fanout(self, event: dict[str, Any]) -> None:
        for queue in list(self._subscribers):
            if queue.qsize() < 10_000:  # drop on a stuck consumer, never block
                queue.put_nowait(event)

    # ------------------------------------------------------------------
    # HTTP plumbing
    # ------------------------------------------------------------------
    async def _read_request(self, reader: asyncio.StreamReader) -> _Request:
        line = await asyncio.wait_for(reader.readline(), timeout=30)
        if not line:
            raise ConnectionError("client closed before sending a request")
        parts = line.decode("latin-1").split()
        if len(parts) != 3:
            raise ValueError(f"malformed request line: {line!r}")
        method, target, _version = parts
        headers: dict[str, str] = {}
        while True:
            raw = await asyncio.wait_for(reader.readline(), timeout=30)
            if raw in (b"\r\n", b"\n", b""):
                break
            key, _, value = raw.decode("latin-1").partition(":")
            headers[key.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0") or 0)
        body = await reader.readexactly(length) if length > 0 else b""
        path, _, qs = target.partition("?")
        query = {k: v[-1] for k, v in parse_qs(qs).items()}
        return _Request(
            method=method.upper(), path=path, query=query, headers=headers, body=body
        )

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            try:
                req = await self._read_request(reader)
            except (ConnectionError, ValueError, asyncio.TimeoutError,
                    asyncio.IncompleteReadError):
                return
            self.requests += 1
            self.by_endpoint[f"{req.method} {req.path}"] += 1
            tel = self._tel
            # join the caller's trace when the carrier header is present
            # (lenient: a malformed header means a fresh trace, never a 4xx)
            ctx = (
                obs.extract_traceparent(req.headers.get("x-repro-trace"))
                if tel is not None
                else None
            )
            try:
                with tel.activate(ctx) if tel is not None else nullcontext():
                    if req.method == "GET" and req.path == "/metrics":
                        await self._h_metrics(req, writer)
                        return
                    if req.method == "GET" and req.path == "/v1/events":
                        await self._h_events(req, writer)
                        return
                    status, payload, headers = await self._dispatch(req)
                writer.write(_json_response(status, payload, headers))
                await writer.drain()
            except ApiError as exc:
                writer.write(_json_response(exc.status, exc.payload()))
                await writer.drain()
            except Exception as exc:  # noqa: BLE001 - a handler bug must 500
                writer.write(
                    _json_response(
                        500, {"error": f"{type(exc).__name__}: {exc}", "status": 500}
                    )
                )
                await writer.drain()
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            with suppress(Exception):
                writer.close()
                await writer.wait_closed()

    async def _dispatch(
        self, req: _Request
    ) -> tuple[int, Any, dict[str, str] | None]:
        routes: dict[tuple[str, str], Any] = {
            ("POST", "/v1/search"): self._h_search,
            ("POST", "/v1/classify"): self._h_classify,
            ("POST", "/v1/lint"): self._h_lint,
            ("POST", "/v1/campaign"): self._h_campaign,
            ("GET", "/v1/status"): self._h_status,
            ("POST", "/v1/coordinator/register"): self._h_coord_register,
            ("POST", "/v1/coordinator/report"): self._h_coord_report,
            ("GET", "/v1/coordinator/status"): self._h_coord_status,
        }
        handler = routes.get((req.method, req.path))
        if handler is not None:
            return await handler(req)
        extra = [("GET", "/v1/events"), ("GET", "/metrics")]
        if req.method == "GET" and req.path == "/":
            endpoints = sorted(f"{m} {p}" for m, p in list(routes) + extra)
            return 200, {"server": SERVER_NAME, "endpoints": endpoints}, None
        known_paths = {p for _, p in routes} | {p for _, p in extra}
        if req.path in known_paths:
            raise ApiError(405, f"method {req.method} not allowed for {req.path}")
        raise ApiError(
            404,
            f"unknown endpoint {req.path}",
            endpoints=sorted(
                {f"{m} {p}" for m, p in routes} | {f"{m} {p}" for m, p in extra}
            ),
        )

    # ------------------------------------------------------------------
    # task endpoints
    # ------------------------------------------------------------------
    def _parse_task(
        self, body: dict[str, Any], *, kind: str
    ) -> tuple[CampaignTask, dict[str, Any], dict[str, int]]:
        """Validate a request against the task schema; returns
        ``(task, scenario_params, knobs)``."""
        scenario = body.get("scenario")
        if not isinstance(scenario, str) or scenario not in scenario_names():
            raise ApiError(
                400,
                f"unknown scenario {scenario!r}",
                registered=list(scenario_names()),
            )
        params = body.get("params", {})
        if not isinstance(params, dict):
            raise ApiError(400, "params must be a JSON object")
        knobs: dict[str, int] = {}
        for knob, default in _KNOBS[kind].items():
            value = body.get(knob, default)
            if isinstance(value, bool) or not isinstance(value, int):
                raise ApiError(400, f"{knob} must be an integer, got {value!r}")
            knobs[knob] = value
        merged = {**params, **knobs}
        try:
            task = CampaignTask(
                kind=kind, scenario=scenario, params=tuple(merged.items())
            )
        except (TypeError, ValueError) as exc:
            raise ApiError(400, f"invalid task: {exc}") from None
        return task, params, knobs

    async def _submit(
        self, task: CampaignTask, *, endpoint: str
    ) -> tuple[Any, str]:
        assert self.batcher is not None
        tel = self._tel
        if tel is None:
            result, source = await self.batcher.submit(task)
        else:
            t0 = time.perf_counter()
            with tel.span(
                "serve.request",
                endpoint=endpoint,
                kind=task.kind,
                scenario=task.scenario,
            ) as sp:
                result, source = await self.batcher.submit(task)
                sp.set(
                    task_hash=task.task_hash,
                    verdict=result.verdict,
                    ok=result.ok,
                    source=source,
                )
            tel.observe(
                "serve.request.latency_s",
                time.perf_counter() - t0,
                endpoint=endpoint,
                source=source,
            )
            tel.incr("serve.requests")
            tel.incr(f"serve.source.{source}")
        if not result.ok:
            raise ApiError(
                502,
                f"task execution failed: {result.error}",
                task_hash=task.task_hash,
                verdict=result.verdict,
            )
        return result, source

    async def _h_search(self, req: _Request) -> tuple[int, Any, dict[str, str]]:
        body = req.json()
        task, params, knobs = self._parse_task(body, kind="reachability")
        result, source = await self._submit(task, endpoint="search")
        payload = search_payload_from_result(
            result, params=params, budget=knobs["budget"]
        )
        return 200, payload, _serve_headers(result, source)

    async def _h_classify(self, req: _Request) -> tuple[int, Any, dict[str, str]]:
        body = req.json()
        task, params, _knobs = self._parse_task(body, kind="classify")
        result, source = await self._submit(task, endpoint="classify")
        payload = classify_payload_from_result(result, params=params)
        return 200, payload, _serve_headers(result, source)

    async def _h_lint(self, req: _Request) -> tuple[int, Any, dict[str, str]]:
        body = req.json()
        task, params, _knobs = self._parse_task(body, kind="lint")
        result, source = await self._submit(task, endpoint="lint")
        payload = lint_payload_from_result(result, params=params)
        return 200, payload, _serve_headers(result, source)

    async def _h_campaign(self, req: _Request) -> tuple[int, Any, None]:
        body = req.json()
        spec = body.get("spec", "quick")
        if not isinstance(spec, str) or spec not in spec_names():
            raise ApiError(
                400, f"unknown spec {spec!r}", registered=list(spec_names())
            )
        limit = body.get("limit")
        if limit is not None and (isinstance(limit, bool) or not isinstance(limit, int)):
            raise ApiError(400, f"limit must be an integer, got {limit!r}")
        tasks = build_spec(spec, limit=limit)
        spec_label = spec
        shard_text = body.get("shard")
        if shard_text is not None:
            try:
                shard = parse_shard(str(shard_text))
            except ValueError as exc:
                raise ApiError(400, str(exc)) from None
            tasks = shard_tasks(tasks, *shard)
            spec_label = f"{spec}-shard{shard[0]}of{shard[1]}"
        results = await asyncio.gather(
            *(self._submit(task, endpoint="campaign") for task in tasks),
            return_exceptions=True,
        )
        summary = CampaignSummary(spec=spec_label, workers=self.runner_config.max_workers)
        errors = 0
        for item in results:
            if isinstance(item, BaseException):
                errors += 1
                continue
            result, _source = item
            summary.add(result)
        payload = summary.to_json()
        payload["request_errors"] = errors
        return 200, payload, None

    # ------------------------------------------------------------------
    # status + events
    # ------------------------------------------------------------------
    def _cache_status(self) -> dict[str, Any]:
        def describe(backend: CacheBackend) -> dict[str, Any]:
            return {
                "backend": type(backend).__name__,
                "entries": len(backend),
                "stats": backend.stats.to_json(),
                "integrity": backend.integrity().to_json(),
            }

        if isinstance(self.cache, TieredCache):
            return {
                "tiered": True,
                "hit_rate": round(self.cache.stats.hit_rate, 4),
                "stats": self.cache.stats.to_json(),
                "hot": describe(self.cache.hot),
                "cold": describe(self.cache.cold),
            }
        return {
            "tiered": False,
            "hit_rate": round(self.cache.stats.hit_rate, 4),
            **describe(self.cache),
        }

    async def _h_status(self, req: _Request) -> tuple[int, Any, None]:
        import repro

        assert self.batcher is not None
        payload = {
            "server": {
                "name": SERVER_NAME,
                "version": repro.__version__,
                "url": self.url,
                "uptime_s": round(time.time() - (self.started_at or time.time()), 3),
                "requests": self.requests,
                "by_endpoint": dict(sorted(self.by_endpoint.items())),
                "telemetry": self.config.telemetry,
                "window_s": self.config.window,
                "jobs": self.config.jobs,
                "search_jobs": self.config.search_jobs,
                "search_engine": self.config.search_engine,
            },
            "batcher": self.batcher.stats.to_json(),
            "cache": self._cache_status(),
            "coordinator": (
                None if self.coordinator is None else self.coordinator.status()
            ),
        }
        return 200, payload, None

    async def _h_events(
        self, req: _Request, writer: asyncio.StreamWriter
    ) -> None:
        if self._tel is None:
            writer.write(
                _json_response(
                    503,
                    {
                        "error": "telemetry is disabled on this server "
                        "(restart without --no-telemetry)",
                        "status": 503,
                    },
                )
            )
            await writer.drain()
            return
        try:
            max_events = int(req.query.get("max_events", "0")) or None
            timeout = float(req.query.get("timeout", "0")) or None
        except ValueError as exc:
            raise ApiError(400, f"bad events query: {exc}") from None
        if max_events is not None and max_events < 0:
            raise ApiError(
                400, f"max_events must be non-negative, got {max_events}"
            )
        if timeout is not None and (timeout < 0 or timeout != timeout):
            raise ApiError(400, f"timeout must be non-negative, got {timeout}")
        queue: asyncio.Queue[dict[str, Any] | None] = asyncio.Queue()
        self._subscribers.add(queue)
        self._tel.gauge("serve.events.subscribers", len(self._subscribers))
        try:
            writer.write(
                (
                    "HTTP/1.1 200 OK\r\n"
                    f"Server: {SERVER_NAME}\r\n"
                    "Content-Type: application/x-ndjson\r\n"
                    "Cache-Control: no-store\r\n"
                    "Connection: close\r\n\r\n"
                ).encode("latin-1")
            )
            await writer.drain()
            # guarantees at least one event reaches every subscriber
            self._tel.event("serve.events.subscribe")
            sent = 0
            deadline = None if timeout is None else time.monotonic() + timeout
            while True:
                remaining = None
                if deadline is not None:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        break
                try:
                    event = await asyncio.wait_for(queue.get(), timeout=remaining)
                except asyncio.TimeoutError:
                    break
                if event is None:  # shutdown sentinel
                    break
                writer.write((json.dumps(event, sort_keys=True) + "\n").encode("utf-8"))
                await writer.drain()
                sent += 1
                if max_events is not None and sent >= max_events:
                    break
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            self._subscribers.discard(queue)
            if self._tel is not None:  # gauge symmetry: one per disconnect
                self._tel.gauge("serve.events.subscribers", len(self._subscribers))

    async def _h_metrics(
        self, req: _Request, writer: asyncio.StreamWriter
    ) -> None:
        if self._tel is None:
            raise ApiError(
                503,
                "telemetry is disabled on this server "
                "(restart without --no-telemetry)",
            )
        text = obs.render_prometheus(self._tel)
        writer.write(_text_response(200, text, obs.PROM_CONTENT_TYPE))
        await writer.drain()

    # ------------------------------------------------------------------
    # coordinator endpoints
    # ------------------------------------------------------------------
    def _coordinator(self) -> ShardCoordinator:
        if self.coordinator is None:
            raise ApiError(
                503,
                "no shard coordinator on this server "
                "(start with --shards N to enable fan-out)",
            )
        return self.coordinator

    async def _h_coord_register(self, req: _Request) -> tuple[int, Any, None]:
        body = req.json()
        worker_id = body.get("worker")
        if not isinstance(worker_id, str) or not worker_id:
            raise ApiError(400, "worker must be a non-empty string")
        assignment = self._coordinator().register(worker_id)
        if self._tel is not None:
            self._tel.event(
                "serve.coordinator.register",
                worker=worker_id,
                shard=assignment["shard"],
            )
        return 200, assignment, None

    async def _h_coord_report(self, req: _Request) -> tuple[int, Any, None]:
        body = req.json()
        worker_id = body.get("worker")
        entries = body.get("results")
        if not isinstance(worker_id, str) or not worker_id:
            raise ApiError(400, "worker must be a non-empty string")
        if not isinstance(entries, list):
            raise ApiError(400, "results must be a list of {task, result} objects")
        try:
            receipt = self._coordinator().report(worker_id, entries)
        except KeyError as exc:
            raise ApiError(400, str(exc.args[0])) from None
        except (TypeError, ValueError) as exc:
            raise ApiError(400, f"bad report entry: {exc}") from None
        if self._tel is not None:
            self._tel.event(
                "serve.coordinator.report",
                worker=worker_id,
                merged=receipt["merged"],
            )
        return 200, receipt, None

    async def _h_coord_status(self, req: _Request) -> tuple[int, Any, None]:
        return 200, self._coordinator().status(), None
