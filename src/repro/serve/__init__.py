"""Verification-as-a-service: the ``repro serve`` subsystem.

Layers, bottom up:

* :mod:`repro.serve.payloads` -- the canonical verdict payload builders
  shared with the CLI (the byte-identity contract);
* :mod:`repro.serve.batcher` -- micro-batching + in-flight dedup in
  front of :func:`~repro.campaign.runner.run_campaign`;
* :mod:`repro.serve.coordinator` -- shard assignment and ledger merging
  for worker fleets;
* :mod:`repro.serve.server` -- the asyncio HTTP/JSON front
  (``python -m repro serve``);
* :mod:`repro.serve.client` -- the stdlib client (``python -m repro
  client``) and the fleet-worker loop.

Cache backends themselves (directory / memory LRU / sqlite / tiered)
live in :mod:`repro.campaign.cache`; the server composes them via
``make_backend`` + :class:`~repro.campaign.cache.TieredCache`.

See ``docs/SERVE.md`` for the API reference and operational model.
"""

from repro.serve.batcher import BatcherStats, MicroBatcher
from repro.serve.client import (
    ServeClient,
    ServeError,
    ServeResponse,
    default_worker_id,
    run_worker,
)
from repro.serve.coordinator import ShardCoordinator, WorkerSlot
from repro.serve.payloads import (
    classify_payload_from_result,
    dumps,
    lint_payload_from_result,
    search_payload,
    search_payload_from_result,
)
from repro.serve.server import ApiError, ReproServer, ServeConfig

__all__ = [
    "ApiError",
    "BatcherStats",
    "MicroBatcher",
    "ReproServer",
    "ServeClient",
    "ServeConfig",
    "ServeError",
    "ServeResponse",
    "ShardCoordinator",
    "WorkerSlot",
    "classify_payload_from_result",
    "default_worker_id",
    "dumps",
    "lint_payload_from_result",
    "run_worker",
    "search_payload",
    "search_payload_from_result",
]
