"""Canonical verdict payloads shared by the CLI and the serve API.

The acceptance contract for verification-as-a-service is that a cold
``/v1/search`` response and ``python -m repro search ... --json`` are
*byte-identical*: same keys, same order, same serialisation.  The only
way to keep that true under refactors is for both callers to build the
payload through one function -- these.

All builders return plain ordered dicts; :func:`dumps` is the one
serialisation (``json.dumps(..., indent=2)``) both the CLI printer and
the HTTP response writer use.
"""

from __future__ import annotations

import json
from typing import Any

from repro.campaign.tasks import TaskResult


def dumps(payload: Any) -> str:
    """The shared wire/stdout serialisation (no trailing newline)."""
    return json.dumps(payload, indent=2)


def search_payload(
    *,
    scenario: str,
    params: dict[str, Any],
    budget: int,
    verdict: str,
    deadlock_reachable: bool,
    states_explored: int | None,
    certificate: str | None,
    witness_cycles: int | None,
) -> dict[str, Any]:
    """The ``search --json`` payload (field order is part of the contract)."""
    return {
        "scenario": scenario,
        "params": params,
        "budget": budget,
        "verdict": verdict,
        "deadlock_reachable": deadlock_reachable,
        "states_explored": states_explored,
        "certificate": certificate,
        "witness_cycles": witness_cycles,
    }


def search_payload_from_result(
    result: TaskResult, *, params: dict[str, Any], budget: int
) -> dict[str, Any]:
    """Rebuild the CLI search payload from a campaign ``reachability`` result.

    The campaign runner never reconstructs witnesses (``find_witness``
    stays off so cached verdicts are engine-independent), matching the
    CLI's default ``--witness`` off: ``witness_cycles`` is ``null`` on
    both sides.
    """
    return search_payload(
        scenario=result.scenario,
        params=params,
        budget=budget,
        verdict=result.verdict,
        deadlock_reachable=result.verdict == "deadlock",
        states_explored=result.detail.get("states_explored"),
        certificate=result.detail.get("certificate"),
        witness_cycles=None,
    )


def classify_payload_from_result(
    result: TaskResult, *, params: dict[str, Any]
) -> dict[str, Any]:
    """The ``/v1/classify`` payload, mirroring the CLI's two modes.

    Cycle-mode results carry ``tilings_tested``/``scenarios_tested``;
    configuration-mode results carry ``states_explored``.  The verdict
    vocabulary is the campaign's (``deadlock`` / ``unreachable``).
    """
    detail = result.detail
    if "tilings_tested" in detail:
        return {
            "scenario": result.scenario,
            "params": params,
            "mode": "cycle",
            "verdict": result.verdict,
            "deadlock_reachable": result.verdict == "deadlock",
            "tilings_tested": detail.get("tilings_tested"),
            "scenarios_tested": detail.get("scenarios_tested"),
            "certificate": detail.get("certificate"),
        }
    return {
        "scenario": result.scenario,
        "params": params,
        "mode": "configuration",
        "verdict": result.verdict,
        "deadlock_reachable": result.verdict == "deadlock",
        "states_explored": detail.get("states_explored"),
        "certificate": detail.get("certificate"),
    }


def lint_payload_from_result(
    result: TaskResult, *, params: dict[str, Any]
) -> dict[str, Any]:
    """The ``/v1/lint`` payload from a campaign ``lint`` result."""
    detail = result.detail
    return {
        "scenario": result.scenario,
        "params": params,
        "verdict": result.verdict,
        "certificate": detail.get("certificate"),
        "max_severity": detail.get("max_severity"),
        "diagnostics": detail.get("diagnostics"),
        "errors": detail.get("errors"),
        "rules_run": detail.get("rules_run"),
    }
