"""Stdlib HTTP client for the serve API + the shard-worker loop.

:class:`ServeClient` is a thin ``http.client`` wrapper: one method per
endpoint, JSON in/out, provenance headers surfaced on the response.  It
exists so tests, the ``repro client`` CLI, and CI smoke scripts talk to
the server through one code path (and so nothing here ever needs a
third-party HTTP library).

:func:`run_worker` is the whole fleet-worker protocol in one call:
register with the coordinator, receive a ``{spec, shard}`` work order,
execute the shard locally with :func:`~repro.campaign.runner.run_campaign`,
and report the ``(task, result)`` pairs back for merging.

When telemetry is enabled in the calling process and a span is open
(e.g. the CLI's root span), every request carries an ``X-Repro-Trace``
header, so the server's events -- and its campaign workers' events --
join the caller's trace.
"""

from __future__ import annotations

import json
import os
import socket
from dataclasses import dataclass, field
from http.client import HTTPConnection
from typing import Any
from urllib.parse import urlencode, urlsplit

import repro.obs as obs
from repro.campaign.cache import CacheBackend
from repro.campaign.runner import RunnerConfig, run_campaign
from repro.campaign.specs import build_spec
from repro.campaign.tasks import CampaignTask, parse_shard, shard_tasks


def _trace_header() -> str | None:
    """The current trace carrier, when telemetry is on and a span is open."""
    tel = obs.get()
    if tel is None:
        return None
    ctx = tel.current_context()
    return None if ctx is None else obs.format_traceparent(ctx)


class ServeError(Exception):
    """A non-2xx reply from the server."""

    def __init__(self, status: int, message: str, payload: Any = None) -> None:
        super().__init__(f"HTTP {status}: {message}")
        self.status = status
        self.payload = payload


@dataclass
class ServeResponse:
    """One reply: parsed JSON payload + the provenance headers."""

    status: int
    payload: Any
    headers: dict[str, str] = field(default_factory=dict)
    body: bytes = b""

    @property
    def ok(self) -> bool:
        return 200 <= self.status < 300

    @property
    def source(self) -> str | None:
        """``cache`` / ``inflight`` / ``live`` for task endpoints."""
        return self.headers.get("x-repro-source")

    @property
    def task_hash(self) -> str | None:
        return self.headers.get("x-repro-task-hash")

    def raise_for_status(self) -> ServeResponse:
        if not self.ok:
            message = ""
            if isinstance(self.payload, dict):
                message = str(self.payload.get("error", ""))
            raise ServeError(self.status, message or "request failed", self.payload)
        return self


class ServeClient:
    """JSON client for one ``repro serve`` instance."""

    def __init__(self, base_url: str, *, timeout: float = 300.0) -> None:
        parts = urlsplit(base_url if "//" in base_url else f"http://{base_url}")
        if parts.scheme not in ("", "http"):
            raise ValueError(f"only http:// is supported, got {base_url!r}")
        self.host = parts.hostname or "127.0.0.1"
        self.port = parts.port or 80
        self.timeout = timeout

    @property
    def base_url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def _request(
        self,
        method: str,
        path: str,
        payload: dict[str, Any] | None = None,
        *,
        query: dict[str, Any] | None = None,
    ) -> ServeResponse:
        if query:
            path = f"{path}?{urlencode(query)}"
        conn = HTTPConnection(self.host, self.port, timeout=self.timeout)
        try:
            body = None
            headers = {}
            if payload is not None:
                body = json.dumps(payload).encode("utf-8")
                headers["Content-Type"] = "application/json"
            carrier = _trace_header()
            if carrier is not None:
                headers[obs.TRACE_HEADER] = carrier
            conn.request(method, path, body=body, headers=headers)
            resp = conn.getresponse()
            raw = resp.read()
            try:
                parsed: Any = json.loads(raw.decode("utf-8")) if raw else None
            except ValueError:
                parsed = None
            return ServeResponse(
                status=resp.status,
                payload=parsed,
                headers={k.lower(): v for k, v in resp.getheaders()},
                body=raw,
            )
        finally:
            conn.close()

    # ------------------------------------------------------------------
    # task endpoints
    # ------------------------------------------------------------------
    def search(
        self, scenario: str, params: dict[str, Any] | None = None, **knobs: int
    ) -> ServeResponse:
        return self._request(
            "POST", "/v1/search", {"scenario": scenario, "params": params or {}, **knobs}
        )

    def classify(
        self, scenario: str, params: dict[str, Any] | None = None, **knobs: int
    ) -> ServeResponse:
        return self._request(
            "POST",
            "/v1/classify",
            {"scenario": scenario, "params": params or {}, **knobs},
        )

    def lint(
        self, scenario: str, params: dict[str, Any] | None = None, **knobs: int
    ) -> ServeResponse:
        return self._request(
            "POST", "/v1/lint", {"scenario": scenario, "params": params or {}, **knobs}
        )

    def campaign(
        self, spec: str, *, limit: int | None = None, shard: str | None = None
    ) -> ServeResponse:
        body: dict[str, Any] = {"spec": spec}
        if limit is not None:
            body["limit"] = limit
        if shard is not None:
            body["shard"] = shard
        return self._request("POST", "/v1/campaign", body)

    # ------------------------------------------------------------------
    # status / events / coordinator
    # ------------------------------------------------------------------
    def status(self) -> ServeResponse:
        return self._request("GET", "/v1/status")

    def metrics(self) -> str:
        """Scrape ``GET /metrics``; returns the raw exposition text."""
        resp = self._request("GET", "/metrics")
        if not resp.ok:
            message = ""
            if isinstance(resp.payload, dict):
                message = str(resp.payload.get("error", ""))
            raise ServeError(resp.status, message or "metrics scrape failed",
                             resp.payload)
        return resp.body.decode("utf-8")

    def events(
        self, *, max_events: int = 50, timeout: float = 5.0
    ) -> list[dict[str, Any]]:
        """Subscribe to ``/v1/events`` and collect up to ``max_events``
        telemetry events (or until ``timeout`` seconds pass)."""
        conn = HTTPConnection(self.host, self.port, timeout=timeout + 10.0)
        events: list[dict[str, Any]] = []
        try:
            query = urlencode({"max_events": max_events, "timeout": timeout})
            carrier = _trace_header()
            headers = {} if carrier is None else {obs.TRACE_HEADER: carrier}
            conn.request("GET", f"/v1/events?{query}", headers=headers)
            resp = conn.getresponse()
            if resp.status != 200:
                raw = resp.read()
                try:
                    payload = json.loads(raw.decode("utf-8"))
                except ValueError:
                    payload = None
                raise ServeError(resp.status, "events subscription failed", payload)
            while len(events) < max_events:
                line = resp.readline()
                if not line:
                    break
                line = line.strip()
                if line:
                    events.append(json.loads(line.decode("utf-8")))
        finally:
            conn.close()
        return events

    def register(self, worker_id: str) -> ServeResponse:
        return self._request("POST", "/v1/coordinator/register", {"worker": worker_id})

    def report(
        self, worker_id: str, entries: list[dict[str, Any]]
    ) -> ServeResponse:
        return self._request(
            "POST",
            "/v1/coordinator/report",
            {"worker": worker_id, "results": entries},
        )

    def coordinator_status(self) -> ServeResponse:
        return self._request("GET", "/v1/coordinator/status")


def default_worker_id() -> str:
    return f"{socket.gethostname()}-{os.getpid()}"


def run_worker(
    base_url: str,
    *,
    worker_id: str | None = None,
    jobs: int = 1,
    search_jobs: int = 1,
    search_engine: str | None = None,
    limit: int | None = None,
    cache: CacheBackend | None = None,
    timeout: float = 600.0,
) -> dict[str, Any]:
    """One full coordinator round trip: register -> run shard -> report.

    The shard is executed locally (``jobs`` campaign workers,
    ``search_jobs`` in-task search processes, optional local ``cache``);
    results are posted back and merged into the coordinator's ledger and
    shared cache.  Returns ``{assignment, summary, report}``.
    """
    client = ServeClient(base_url, timeout=timeout)
    worker = worker_id or default_worker_id()
    assignment = client.register(worker).raise_for_status().payload
    index, count = parse_shard(assignment["shard"])
    tasks = shard_tasks(build_spec(assignment["spec"], limit=limit), index, count)
    config = RunnerConfig(
        max_workers=jobs, search_jobs=search_jobs, engine=search_engine, retries=0
    )
    results, summary = run_campaign(
        tasks,
        cache=cache,
        config=config,
        spec_name=f"{assignment['spec']}-shard{index}of{count}",
    )
    by_hash = {r.task_hash: r for r in results}
    entries: list[dict[str, Any]] = []
    seen: set[str] = set()
    for task in tasks:
        if task.task_hash in seen:
            continue
        seen.add(task.task_hash)
        entries.append(
            {"task": task.to_json(), "result": by_hash[task.task_hash].to_json()}
        )
    receipt = client.report(worker, entries).raise_for_status().payload
    return {"assignment": assignment, "summary": summary.to_json(), "report": receipt}


__all__ = [
    "CampaignTask",
    "ServeClient",
    "ServeError",
    "ServeResponse",
    "default_worker_id",
    "run_worker",
]
