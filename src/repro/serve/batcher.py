"""Micro-batching and in-flight dedup in front of the campaign runner.

The serve hot path has three outcomes, fastest first:

1. **cache hit** -- answered synchronously on the event loop (the
   backend read is microseconds for the memory tier, sub-millisecond
   for sqlite/directory), never waiting out the batch window;
2. **in-flight dedup** -- an identical task is already queued or
   executing: the request awaits the same future, so N concurrent
   identical cold queries run the underlying task exactly once;
3. **batched execution** -- a genuine cold miss joins the current
   window; when the window closes the whole batch runs as *one*
   :func:`~repro.campaign.runner.run_campaign` call in a worker thread
   (inheriting its dedup/retry/cache/telemetry machinery), and every
   waiter's future resolves with its task's result.

The executor is expected to be single-lane (the server passes a
1-thread pool): overlapping flushes then serialise, which keeps at most
one process pool alive and lets the next window accumulate while the
previous batch runs.
"""

from __future__ import annotations

import asyncio
from concurrent.futures import Executor
from dataclasses import dataclass

import repro.obs as obs
from repro.campaign.cache import CacheBackend
from repro.campaign.runner import RunnerConfig, run_campaign
from repro.campaign.tasks import CampaignTask, TaskResult

#: how a submit was answered (also the span attr / response header value)
SOURCE_CACHE = "cache"
SOURCE_INFLIGHT = "inflight"
SOURCE_LIVE = "live"


@dataclass
class BatcherStats:
    submitted: int = 0
    cache_hits: int = 0
    inflight_hits: int = 0
    batches: int = 0
    batched_tasks: int = 0
    executed_live: int = 0
    failures: int = 0

    def to_json(self) -> dict[str, int]:
        return {
            "submitted": self.submitted,
            "cache_hits": self.cache_hits,
            "inflight_hits": self.inflight_hits,
            "batches": self.batches,
            "batched_tasks": self.batched_tasks,
            "executed_live": self.executed_live,
            "failures": self.failures,
        }


class MicroBatcher:
    """Collects concurrent cache misses into one campaign wave.

    Single event loop only; construct it from within the loop that will
    call :meth:`submit`.
    """

    def __init__(
        self,
        *,
        cache: CacheBackend | None,
        config: RunnerConfig | None = None,
        window: float = 0.02,
        executor: Executor | None = None,
        spec_name: str = "serve",
    ) -> None:
        if window < 0:
            raise ValueError(f"window must be >= 0, got {window}")
        self.cache = cache
        self.config = config or RunnerConfig(retries=0)
        self.window = window
        self.executor = executor
        self.spec_name = spec_name
        self.stats = BatcherStats()
        self._pending: dict[str, asyncio.Future[TaskResult]] = {}
        self._queue: list[CampaignTask] = []
        self._flush_scheduled = False
        #: task_hash -> traceparent carrier of the request that queued it.
        #: Captured at submit time because the batch thread (and one batch
        #: mixing tasks from different requests) cannot see the submitting
        #: request's contextvars.
        self._trace_carriers: dict[str, str] = {}

    @property
    def inflight(self) -> int:
        """Tasks queued or executing right now."""
        return len(self._pending)

    async def submit(self, task: CampaignTask) -> tuple[TaskResult, str]:
        """Answer one task; returns ``(result, source)``.

        ``source`` is one of :data:`SOURCE_CACHE` (answered from the
        backend without executing), :data:`SOURCE_INFLIGHT` (shared an
        execution already underway), or :data:`SOURCE_LIVE` (this call
        put the task into a batch).
        """
        self.stats.submitted += 1
        if self.cache is not None:
            hit = self.cache.get(task)
            if hit is not None:
                self.stats.cache_hits += 1
                return hit, SOURCE_CACHE

        fut = self._pending.get(task.task_hash)
        if fut is not None:
            self.stats.inflight_hits += 1
            # shield: one waiter's cancellation must not kill the shared run
            return await asyncio.shield(fut), SOURCE_INFLIGHT

        loop = asyncio.get_running_loop()
        fut = loop.create_future()
        self._pending[task.task_hash] = fut
        self._queue.append(task)
        tel = obs.get()
        if tel is not None:
            ctx = tel.current_context()
            if ctx is not None:
                self._trace_carriers[task.task_hash] = obs.format_traceparent(ctx)
        if not self._flush_scheduled:
            self._flush_scheduled = True
            loop.call_later(
                self.window, lambda: asyncio.ensure_future(self._flush())
            )
        return await asyncio.shield(fut), SOURCE_LIVE

    async def _flush(self) -> None:
        self._flush_scheduled = False
        batch, self._queue = self._queue, []
        if not batch:
            return
        self.stats.batches += 1
        self.stats.batched_tasks += len(batch)
        loop = asyncio.get_running_loop()
        try:
            results = await loop.run_in_executor(
                self.executor, self._run_batch, batch
            )
        except Exception as exc:  # noqa: BLE001 - infra failure -> every waiter
            for task in batch:
                fut = self._pending.pop(task.task_hash, None)
                self._trace_carriers.pop(task.task_hash, None)
                if fut is not None and not fut.done():
                    fut.set_exception(exc)
            return
        # run_campaign returns unique-task-order results; the batch is
        # already unique by hash (dupes were deduped via _pending above)
        for task, result in zip(batch, results):
            if not result.ok:
                self.stats.failures += 1
            fut = self._pending.pop(task.task_hash, None)
            self._trace_carriers.pop(task.task_hash, None)
            if fut is not None and not fut.done():
                fut.set_result(result)

    def _run_batch(self, batch: list[CampaignTask]) -> list[TaskResult]:
        traces = {
            task.task_hash: carrier
            for task in batch
            if (carrier := self._trace_carriers.get(task.task_hash)) is not None
        }
        results, summary = run_campaign(
            batch,
            cache=self.cache,
            config=self.config,
            spec_name=self.spec_name,
            traces=traces or None,
        )
        self.stats.executed_live += summary.live
        return results
