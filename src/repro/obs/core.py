"""Telemetry core: nested spans, a counter/gauge registry, event sinks.

One :class:`Telemetry` instance collects everything a run produces:

* **spans** -- named, nested timing scopes.  The current span is tracked
  in a :class:`contextvars.ContextVar`, so nesting follows the call stack
  (and stays correct under ``asyncio`` or thread pools that copy
  context).  Every span emits a ``span_start``/``span_end`` event pair
  and folds its duration into a per-name aggregate.
* **counters** -- monotonic named sums (``incr``).  Each increment emits
  one ``counter`` event and accumulates into the registry, so the final
  registry value always equals the sum of the event stream.
* **gauges** -- last-value-wins measurements (``gauge``).

Events are plain dicts (see :mod:`repro.obs.schema` for the documented
shape) pushed to every attached *sink* -- a callable taking the event
dict.  With no sinks attached, collection still aggregates (that is what
campaign worker processes do: no exporter, just a summary embedded in the
task result).

The module deliberately imports nothing beyond the standard library so
instrumented hot layers (analysis, sim) can import it unconditionally.
Enabled/disabled gating lives in :mod:`repro.obs` (the package
``__init__``): disabled mode never constructs a ``Telemetry`` at all.
"""

from __future__ import annotations

import itertools
import time
from collections.abc import Callable, Iterator
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass, field
from typing import Any

#: version stamped into every event as ``v`` (see repro.obs.schema)
EVENT_SCHEMA_VERSION = 1

Sink = Callable[[dict[str, Any]], None]


@dataclass
class Span:
    """One live timing scope; annotate it with :meth:`set`."""

    name: str
    span_id: int
    parent_id: int | None
    attrs: dict[str, Any] = field(default_factory=dict)

    def set(self, **attrs: Any) -> None:
        """Attach attributes reported on the span's ``span_end`` event."""
        self.attrs.update(attrs)


@dataclass
class SpanStats:
    """Per-name aggregate over finished spans."""

    count: int = 0
    wall_s: float = 0.0
    max_s: float = 0.0

    def add(self, dur_s: float) -> None:
        self.count += 1
        self.wall_s += dur_s
        if dur_s > self.max_s:
            self.max_s = dur_s

    def to_json(self) -> dict[str, Any]:
        return {
            "count": self.count,
            "wall_s": round(self.wall_s, 6),
            "max_s": round(self.max_s, 6),
        }


@dataclass
class Mark:
    """A point-in-time registry snapshot for :meth:`Telemetry.since`."""

    counters: dict[str, float]
    spans: dict[str, tuple[int, float]]


class Telemetry:
    """A live telemetry collector (spans + counters + gauges + sinks)."""

    def __init__(self, *, run_id: str = "") -> None:
        self.run_id = run_id
        self.counters: dict[str, float] = {}
        self.gauges: dict[str, float] = {}
        self.span_stats: dict[str, SpanStats] = {}
        self._sinks: list[Sink] = []
        self._ids = itertools.count(1)
        self._current: ContextVar[Span | None] = ContextVar(
            "repro_obs_current_span", default=None
        )

    # ------------------------------------------------------------------
    # sinks + event emission
    # ------------------------------------------------------------------
    def add_sink(self, sink: Sink) -> None:
        self._sinks.append(sink)

    def remove_sink(self, sink: Sink) -> None:
        if sink in self._sinks:
            self._sinks.remove(sink)

    def current_span(self) -> Span | None:
        return self._current.get()

    def _emit(
        self,
        kind: str,
        name: str,
        *,
        span: int | None = None,
        parent: int | None = None,
        attrs: dict[str, Any] | None = None,
        **extra: Any,
    ) -> None:
        if span is None:
            cur = self._current.get()
            span = cur.span_id if cur is not None else None
        event: dict[str, Any] = {
            "v": EVENT_SCHEMA_VERSION,
            "t": round(time.time(), 6),
            "kind": kind,
            "name": name,
            "span": span,
            "parent": parent,
            "attrs": attrs or {},
        }
        event.update(extra)
        for sink in self._sinks:
            sink(event)

    # ------------------------------------------------------------------
    # spans
    # ------------------------------------------------------------------
    @contextmanager
    def span(self, name: str, /, **attrs: Any) -> Iterator[Span]:
        """Open a nested timing scope; yields the live :class:`Span`."""
        parent = self._current.get()
        sp = Span(
            name=name,
            span_id=next(self._ids),
            parent_id=parent.span_id if parent is not None else None,
        )
        token = self._current.set(sp)
        self._emit(
            "span_start", name, span=sp.span_id, parent=sp.parent_id, attrs=dict(attrs)
        )
        t0 = time.perf_counter()
        try:
            yield sp
        finally:
            dur = time.perf_counter() - t0
            self._current.reset(token)
            merged = {**attrs, **sp.attrs}
            self.span_stats.setdefault(name, SpanStats()).add(dur)
            self._emit(
                "span_end",
                name,
                span=sp.span_id,
                parent=sp.parent_id,
                attrs=merged,
                dur_s=round(dur, 6),
            )

    def point_span(self, name: str, dur_s: float, /, **attrs: Any) -> None:
        """Record an already-finished scope with an externally measured
        duration (e.g. a campaign task that ran in a worker process)."""
        parent = self._current.get()
        sid = next(self._ids)
        pid = parent.span_id if parent is not None else None
        self.span_stats.setdefault(name, SpanStats()).add(dur_s)
        self._emit("span_start", name, span=sid, parent=pid, attrs=dict(attrs))
        self._emit(
            "span_end",
            name,
            span=sid,
            parent=pid,
            attrs=dict(attrs),
            dur_s=round(dur_s, 6),
        )

    # ------------------------------------------------------------------
    # counters / gauges / freeform events
    # ------------------------------------------------------------------
    def incr(self, name: str, value: float = 1, /, **attrs: Any) -> None:
        """Add ``value`` to counter ``name`` (and emit a ``counter`` event)."""
        self.counters[name] = self.counters.get(name, 0) + value
        self._emit("counter", name, attrs=dict(attrs), value=value)

    def gauge(self, name: str, value: float, /, **attrs: Any) -> None:
        """Set gauge ``name`` to ``value`` (last write wins)."""
        self.gauges[name] = value
        self._emit("gauge", name, attrs=dict(attrs), value=value)

    def event(self, name: str, /, **attrs: Any) -> None:
        """Emit a freeform point event (no registry side effect)."""
        self._emit("event", name, attrs=dict(attrs))

    def run_start(self, name: str, /, **attrs: Any) -> None:
        self._emit("run_start", name, attrs=dict(attrs))

    def run_end(self, name: str, /, **attrs: Any) -> None:
        self._emit("run_end", name, attrs={**attrs, "snapshot": self.snapshot()})

    # ------------------------------------------------------------------
    # snapshots
    # ------------------------------------------------------------------
    def snapshot(self) -> dict[str, Any]:
        """The whole registry as a JSON-able dict."""
        return {
            "counters": {k: self.counters[k] for k in sorted(self.counters)},
            "gauges": {k: self.gauges[k] for k in sorted(self.gauges)},
            "spans": {
                k: self.span_stats[k].to_json() for k in sorted(self.span_stats)
            },
        }

    def mark(self) -> Mark:
        """A snapshot suitable for :meth:`since` deltas."""
        return Mark(
            counters=dict(self.counters),
            spans={k: (s.count, s.wall_s) for k, s in self.span_stats.items()},
        )

    def since(self, mark: Mark) -> dict[str, Any]:
        """Registry deltas accumulated after ``mark`` (for per-task
        summaries embedded in campaign ledger records)."""
        counters: dict[str, float] = {}
        for name, value in self.counters.items():
            delta = value - mark.counters.get(name, 0)
            if delta:
                counters[name] = round(delta, 6)
        spans: dict[str, dict[str, float]] = {}
        for name, stats in self.span_stats.items():
            count0, wall0 = mark.spans.get(name, (0, 0.0))
            if stats.count > count0:
                spans[name] = {
                    "count": stats.count - count0,
                    "wall_s": round(stats.wall_s - wall0, 6),
                }
        return {"counters": counters, "spans": spans}
