"""Telemetry core: nested spans, counters/gauges/histograms, event sinks.

One :class:`Telemetry` instance collects everything a run produces:

* **spans** -- named, nested timing scopes.  The current span is tracked
  in a :class:`contextvars.ContextVar`, so nesting follows the call stack
  (and stays correct under ``asyncio`` or thread pools that copy
  context).  Every span emits a ``span_start``/``span_end`` event pair
  and folds its duration into a per-name aggregate.
* **counters** -- monotonic named sums (``incr``).  Each increment emits
  one ``counter`` event and accumulates into the registry, so the final
  registry value always equals the sum of the event stream.
* **gauges** -- last-value-wins measurements (``gauge``).
* **histograms** -- bucketed distributions (``observe``): fixed
  exponential buckets, mergeable across processes, with p50/p95/p99
  derivable from the bucket counts alone (see :class:`Histogram`).

Every event is stamped with a **trace context** (schema v2): a 32-hex
``trace`` id naming the originating request, and -- on span events --
globally unique 16-hex ``sid``/``psid`` span ids, so event streams from
different processes merge into one span tree (``repro telemetry
trace``).  A context crosses process boundaries via the carriers in
:mod:`repro.obs.trace`; :meth:`Telemetry.activate` installs an extracted
remote parent so locally opened spans attach under it.

Events are plain dicts (see :mod:`repro.obs.schema` for the documented
shape) pushed to every attached *sink* -- a callable taking the event
dict.  With no sinks attached, collection still aggregates (that is what
campaign worker processes do: no exporter, just a summary embedded in the
task result).

The module deliberately imports nothing beyond the standard library (and
the equally stdlib-only :mod:`repro.obs.trace`) so instrumented hot
layers (analysis, sim) can import it unconditionally.  Enabled/disabled
gating lives in :mod:`repro.obs` (the package ``__init__``): disabled
mode never constructs a ``Telemetry`` at all.
"""

from __future__ import annotations

import itertools
import math
import time
from bisect import bisect_left
from collections.abc import Callable, Iterator
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass, field
from typing import Any

from repro.obs.trace import TraceContext, new_span_id, new_trace_id

#: version stamped into every event as ``v`` (see repro.obs.schema)
EVENT_SCHEMA_VERSION = 2

Sink = Callable[[dict[str, Any]], None]

#: fixed exponential histogram bucket upper bounds: powers of two from
#: 2^-20 (~1 microsecond when observing seconds) to 2^20 (~12 days).
#: Fixed so histograms recorded by different processes merge bucket-wise.
HISTOGRAM_BOUNDS: tuple[float, ...] = tuple(
    float(2.0**e) for e in range(-20, 21)
)


class Histogram:
    """A mergeable exponential-bucket histogram.

    ``counts[i]`` counts observations ``v`` with ``v <= bounds[i]``
    (and ``v > bounds[i-1]``); the final slot is the ``+Inf`` overflow
    bucket.  ``count``/``sum`` give the exact mean; ``min``/``max`` are
    tracked for reporting.  :meth:`quantile` needs only the bucket
    counts, so quantiles survive JSON round trips and cross-process
    merges -- the upper bound of the bucket containing the target rank
    is returned (the overflow bucket reports the tracked ``max``).
    """

    __slots__ = ("counts", "count", "sum", "min", "max")

    bounds: tuple[float, ...] = HISTOGRAM_BOUNDS

    def __init__(self) -> None:
        self.counts: list[int] = [0] * (len(self.bounds) + 1)
        self.count: int = 0
        self.sum: float = 0.0
        self.min: float = math.inf
        self.max: float = -math.inf

    def observe(self, value: float) -> None:
        """Record one observation."""
        value = float(value)
        self.counts[bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.sum += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    def merge(self, other: Histogram) -> Histogram:
        """Fold ``other`` into this histogram (bucket-wise); returns self."""
        for i, c in enumerate(other.counts):
            self.counts[i] += c
        self.count += other.count
        self.sum += other.sum
        if other.count:
            self.min = min(self.min, other.min)
            self.max = max(self.max, other.max)
        return self

    def quantile(self, q: float) -> float:
        """The ``q``-quantile (0 < q <= 1) from bucket counts alone.

        Returns the upper bound of the bucket holding the ``ceil(q *
        count)``-th observation; ``nan`` when empty.  Error is bounded by
        the bucket's width (a factor of two).
        """
        if not 0.0 < q <= 1.0:
            raise ValueError(f"quantile must be in (0, 1], got {q}")
        if self.count == 0:
            return math.nan
        target = math.ceil(q * self.count)
        cum = 0
        for i, c in enumerate(self.counts):
            cum += c
            if cum >= target:
                return self.bounds[i] if i < len(self.bounds) else self.max
        return self.max  # pragma: no cover - counts always sum to count

    def mean(self) -> float:
        return self.sum / self.count if self.count else math.nan

    def to_json(self) -> dict[str, Any]:
        return {
            "counts": list(self.counts),
            "count": self.count,
            "sum": round(self.sum, 6),
            "min": self.min if self.count else None,
            "max": self.max if self.count else None,
        }

    @classmethod
    def from_json(cls, data: dict[str, Any]) -> Histogram:
        hist = cls()
        counts = list(data.get("counts", []))
        if len(counts) != len(hist.counts):
            raise ValueError(
                f"histogram has {len(counts)} buckets, want {len(hist.counts)}"
            )
        hist.counts = [int(c) for c in counts]
        hist.count = int(data.get("count", 0))
        hist.sum = float(data.get("sum", 0.0))
        if hist.count:
            hist.min = float(data["min"])
            hist.max = float(data["max"])
        return hist

    def summary(self) -> dict[str, Any]:
        """Reporting view: count/mean/extremes + bucket-derived quantiles."""
        if self.count == 0:
            return {"count": 0}
        return {
            "count": self.count,
            "sum": round(self.sum, 6),
            "mean": round(self.mean(), 6),
            "min": self.min,
            "max": self.max,
            "p50": self.quantile(0.50),
            "p95": self.quantile(0.95),
            "p99": self.quantile(0.99),
        }


@dataclass
class Span:
    """One live timing scope; annotate it with :meth:`set`."""

    name: str
    span_id: int
    parent_id: int | None
    #: trace the span belongs to (32 hex digits)
    trace: str = ""
    #: globally unique span id (16 hex digits)
    sid: str = ""
    #: parent's globally unique span id (may live in another process)
    psid: str | None = None
    attrs: dict[str, Any] = field(default_factory=dict)

    def set(self, **attrs: Any) -> None:
        """Attach attributes reported on the span's ``span_end`` event."""
        self.attrs.update(attrs)

    def context(self) -> TraceContext:
        """This span's position as an injectable :class:`TraceContext`."""
        return TraceContext(self.trace, self.sid)


@dataclass
class SpanStats:
    """Per-name aggregate over finished spans."""

    count: int = 0
    wall_s: float = 0.0
    max_s: float = 0.0

    def add(self, dur_s: float) -> None:
        self.count += 1
        self.wall_s += dur_s
        if dur_s > self.max_s:
            self.max_s = dur_s

    def to_json(self) -> dict[str, Any]:
        return {
            "count": self.count,
            "wall_s": round(self.wall_s, 6),
            "max_s": round(self.max_s, 6),
        }


@dataclass
class Mark:
    """A point-in-time registry snapshot for :meth:`Telemetry.since`."""

    counters: dict[str, float]
    spans: dict[str, tuple[int, float]]


class Telemetry:
    """A live telemetry collector (spans + counters + gauges + sinks)."""

    def __init__(self, *, run_id: str = "") -> None:
        self.run_id = run_id
        self.counters: dict[str, float] = {}
        self.gauges: dict[str, float] = {}
        self.histograms: dict[str, Histogram] = {}
        self.span_stats: dict[str, SpanStats] = {}
        self._sinks: list[Sink] = []
        self._ids = itertools.count(1)
        self._current: ContextVar[Span | None] = ContextVar(
            "repro_obs_current_span", default=None
        )
        #: remote parent installed by :meth:`activate` (an extracted
        #: carrier), stored with its *anchor*: the span that was open at
        #: activation time.  The remote wins over that anchor (and over
        #: no-span-at-all); any local span opened after activation wins
        #: over the remote, so nesting inside the activation is normal.
        self._remote: ContextVar[tuple[TraceContext, Span | None] | None] = (
            ContextVar("repro_obs_remote_parent", default=None)
        )

    # ------------------------------------------------------------------
    # sinks + event emission
    # ------------------------------------------------------------------
    def add_sink(self, sink: Sink) -> None:
        self._sinks.append(sink)

    def remove_sink(self, sink: Sink) -> None:
        if sink in self._sinks:
            self._sinks.remove(sink)

    def current_span(self) -> Span | None:
        return self._current.get()

    def _effective_context(self) -> TraceContext | None:
        """The parent context right now, honouring activation precedence:
        an activated remote carrier shadows whatever was open when it was
        activated; a local span opened since shadows the remote."""
        remote = self._remote.get()
        cur = self._current.get()
        if remote is not None and cur is remote[1]:
            return remote[0]
        return cur.context() if cur is not None else None

    def current_context(self) -> TraceContext | None:
        """The context a child span (or outgoing request) would attach to."""
        return self._effective_context()

    @contextmanager
    def activate(self, ctx: TraceContext | None) -> Iterator[None]:
        """Adopt ``ctx`` (an extracted carrier) as the remote parent:
        spans opened inside join its trace as children -- even when an
        unrelated local span (e.g. the batch thread's ``campaign.run``)
        is already open.  ``None`` is a no-op so call sites can pass
        lenient-extract results straight in."""
        if ctx is None:
            yield
            return
        token = self._remote.set((ctx, self._current.get()))
        try:
            yield
        finally:
            self._remote.reset(token)

    def _parentage(self) -> tuple[str, str | None]:
        """``(trace_id, parent_sid)`` for a span opened right now."""
        ctx = self._effective_context()
        if ctx is not None:
            return ctx.trace_id, ctx.span_id
        return new_trace_id(), None

    def _emit(
        self,
        kind: str,
        name: str,
        *,
        span: int | None = None,
        parent: int | None = None,
        attrs: dict[str, Any] | None = None,
        trace: str | None = None,
        sid: str | None = None,
        psid: str | None = None,
        **extra: Any,
    ) -> None:
        if span is None:
            cur = self._current.get()
            span = cur.span_id if cur is not None else None
        if trace is None:
            ctx = self._effective_context()
            trace = ctx.trace_id if ctx is not None else None
        event: dict[str, Any] = {
            "v": EVENT_SCHEMA_VERSION,
            "t": round(time.time(), 6),
            "kind": kind,
            "name": name,
            "span": span,
            "parent": parent,
            "trace": trace,
            "attrs": attrs or {},
        }
        if sid is not None:
            event["sid"] = sid
            event["psid"] = psid
        event.update(extra)
        for sink in self._sinks:
            sink(event)

    # ------------------------------------------------------------------
    # spans
    # ------------------------------------------------------------------
    @contextmanager
    def span(self, name: str, /, **attrs: Any) -> Iterator[Span]:
        """Open a nested timing scope; yields the live :class:`Span`."""
        parent = self._current.get()
        trace_id, psid = self._parentage()
        sp = Span(
            name=name,
            span_id=next(self._ids),
            parent_id=parent.span_id if parent is not None else None,
            trace=trace_id,
            sid=new_span_id(),
            psid=psid,
        )
        token = self._current.set(sp)
        self._emit(
            "span_start", name, span=sp.span_id, parent=sp.parent_id,
            attrs=dict(attrs), trace=sp.trace, sid=sp.sid, psid=sp.psid,
        )
        t0 = time.perf_counter()
        try:
            yield sp
        finally:
            dur = time.perf_counter() - t0
            self._current.reset(token)
            merged = {**attrs, **sp.attrs}
            self.span_stats.setdefault(name, SpanStats()).add(dur)
            self._emit(
                "span_end",
                name,
                span=sp.span_id,
                parent=sp.parent_id,
                attrs=merged,
                trace=sp.trace,
                sid=sp.sid,
                psid=sp.psid,
                dur_s=round(dur, 6),
            )

    def point_span(
        self,
        name: str,
        dur_s: float,
        /,
        *,
        trace_ctx: TraceContext | None = None,
        **attrs: Any,
    ) -> None:
        """Record an already-finished scope with an externally measured
        duration (e.g. a campaign task that ran in a worker process).

        ``trace_ctx`` overrides the parentage: the span joins that trace
        as a child of that span id (how the campaign runner files each
        ``campaign.task`` under the serve request that submitted it)."""
        parent = self._current.get()
        sid = next(self._ids)
        pid = parent.span_id if parent is not None else None
        if trace_ctx is not None:
            trace_id, psid = trace_ctx.trace_id, trace_ctx.span_id
        else:
            trace_id, psid = self._parentage()
        gsid = new_span_id()
        self.span_stats.setdefault(name, SpanStats()).add(dur_s)
        self._emit(
            "span_start", name, span=sid, parent=pid, attrs=dict(attrs),
            trace=trace_id, sid=gsid, psid=psid,
        )
        self._emit(
            "span_end",
            name,
            span=sid,
            parent=pid,
            attrs=dict(attrs),
            trace=trace_id,
            sid=gsid,
            psid=psid,
            dur_s=round(dur_s, 6),
        )

    # ------------------------------------------------------------------
    # counters / gauges / histograms / freeform events
    # ------------------------------------------------------------------
    def incr(self, name: str, value: float = 1, /, **attrs: Any) -> None:
        """Add ``value`` to counter ``name`` (and emit a ``counter`` event)."""
        self.counters[name] = self.counters.get(name, 0) + value
        self._emit("counter", name, attrs=dict(attrs), value=value)

    def gauge(self, name: str, value: float, /, **attrs: Any) -> None:
        """Set gauge ``name`` to ``value`` (last write wins)."""
        self.gauges[name] = value
        self._emit("gauge", name, attrs=dict(attrs), value=value)

    def observe(self, name: str, value: float, /, **attrs: Any) -> None:
        """Record ``value`` into histogram ``name`` (emits a ``hist``
        event, so streams rebuild the distribution from events alone)."""
        hist = self.histograms.get(name)
        if hist is None:
            hist = self.histograms[name] = Histogram()
        hist.observe(value)
        self._emit("hist", name, attrs=dict(attrs), value=value)

    def event(self, name: str, /, **attrs: Any) -> None:
        """Emit a freeform point event (no registry side effect)."""
        self._emit("event", name, attrs=dict(attrs))

    def run_start(self, name: str, /, **attrs: Any) -> None:
        self._emit("run_start", name, attrs=dict(attrs))

    def run_end(self, name: str, /, **attrs: Any) -> None:
        self._emit("run_end", name, attrs={**attrs, "snapshot": self.snapshot()})

    # ------------------------------------------------------------------
    # snapshots
    # ------------------------------------------------------------------
    def snapshot(self) -> dict[str, Any]:
        """The whole registry as a JSON-able dict."""
        return {
            "counters": {k: self.counters[k] for k in sorted(self.counters)},
            "gauges": {k: self.gauges[k] for k in sorted(self.gauges)},
            "histograms": {
                k: self.histograms[k].summary() for k in sorted(self.histograms)
            },
            "spans": {
                k: self.span_stats[k].to_json() for k in sorted(self.span_stats)
            },
        }

    def mark(self) -> Mark:
        """A snapshot suitable for :meth:`since` deltas."""
        return Mark(
            counters=dict(self.counters),
            spans={k: (s.count, s.wall_s) for k, s in self.span_stats.items()},
        )

    def since(self, mark: Mark) -> dict[str, Any]:
        """Registry deltas accumulated after ``mark`` (for per-task
        summaries embedded in campaign ledger records)."""
        counters: dict[str, float] = {}
        for name, value in self.counters.items():
            delta = value - mark.counters.get(name, 0)
            if delta:
                counters[name] = round(delta, 6)
        spans: dict[str, dict[str, float]] = {}
        for name, stats in self.span_stats.items():
            count0, wall0 = mark.spans.get(name, (0, 0.0))
            if stats.count > count0:
                spans[name] = {
                    "count": stats.count - count0,
                    "wall_s": round(stats.wall_s - wall0, 6),
                }
        return {"counters": counters, "spans": spans}
