"""Live-follow a telemetry JSONL stream (``repro telemetry tail``).

:func:`follow` is a generator over :class:`TailLine` items: one per
event line as it lands (pretty one-line rendering), plus periodic
``rollup`` lines summarising the counters/histograms folded so far --
`tail -f` with a running report.  It survives the stream's normal
hazards: the file not existing yet (waits for it), truncation/rotation
(reopens from the top), and partial trailing lines (buffers until the
newline arrives, matching the exporter's line-at-a-time flush).
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Iterator

from repro.obs.report import TelemetryReport, fold_events


@dataclass(frozen=True)
class TailLine:
    """One unit of tail output: an event line or a periodic rollup."""

    kind: str  # "event" | "rollup" | "info"
    text: str


def format_event(event: dict[str, Any]) -> str:
    """One aligned line per event (the tail's per-line rendering)."""
    kind = str(event.get("kind", "?"))
    name = str(event.get("name", "?"))
    t = event.get("t")
    stamp = (
        time.strftime("%H:%M:%S", time.localtime(t))
        if isinstance(t, (int, float))
        else "--:--:--"
    )
    trace = event.get("trace")
    tshort = trace[:8] if isinstance(trace, str) else "-"
    detail = ""
    if kind == "span_end":
        dur = event.get("dur_s")
        if isinstance(dur, (int, float)):
            detail = f" dur={dur * 1000:.1f}ms"
    elif kind in ("counter", "gauge", "hist"):
        detail = f" value={event.get('value')}"
    attrs = event.get("attrs")
    if isinstance(attrs, dict) and attrs:
        pairs = ", ".join(f"{k}={v}" for k, v in list(attrs.items())[:4])
        detail += f" {{{pairs}}}"
    return f"{stamp} [{tshort}] {kind:<10} {name}{detail}"


def format_rollup(report: TelemetryReport) -> str:
    """The periodic one-line rollup: events seen plus headline metrics."""
    bits = [f"events={report.events}"]
    if report.traces:
        bits.append(f"traces={len(report.traces)}")
    searches = report.counters.get("search.calls")
    if searches:
        bits.append(f"searches={searches:g}")
    states = report.counters.get("search.states_explored")
    if states:
        bits.append(f"states={states:g}")
    hit_rate = report.cache_hit_rate()
    if hit_rate is not None:
        bits.append(f"cache_hit={hit_rate:.0%}")
    for name in ("serve.request.latency_s", "campaign.task.wall_s"):
        hist = report.histograms.get(name)
        if hist is not None and hist.count:
            bits.append(f"{name.split('.', 1)[1]}.p95={hist.quantile(0.95):g}")
    if report.invalid:
        bits.append(f"violations={len(report.invalid)}")
    return "-- rollup: " + " ".join(bits)


def follow(
    path: str | Path,
    *,
    poll_s: float = 0.2,
    rollup_every_s: float = 5.0,
    from_start: bool = True,
    stop: Callable[[], bool] | None = None,
    _sleep: Callable[[float], None] = time.sleep,
) -> Iterator[TailLine]:
    """Yield :class:`TailLine` items as ``path`` grows (never returns
    unless ``stop()`` goes true -- tests pass one; the CLI uses Ctrl-C).

    ``from_start=False`` skips history and only follows new events.
    Truncation (size shrank) reopens from the top with a note.
    """
    path = Path(path)
    report = TelemetryReport(path=str(path))
    offset = 0
    buffer = ""
    waiting_said = False
    last_rollup = time.monotonic()
    if not from_start and path.exists():
        offset = path.stat().st_size
    while True:
        if stop is not None and stop():
            return
        try:
            size = path.stat().st_size
        except OSError:
            if not waiting_said:
                waiting_said = True
                yield TailLine("info", f"waiting for {path} ...")
            _sleep(poll_s)
            continue
        if size < offset:
            yield TailLine("info", f"{path} truncated; following from the top")
            offset, buffer = 0, ""
        if size > offset:
            with open(path, encoding="utf-8") as fh:
                fh.seek(offset)
                chunk = fh.read()
                offset = fh.tell()
            buffer += chunk
            lines = buffer.split("\n")
            buffer = lines.pop()  # partial trailing line, if any
            fresh: list[dict[str, Any]] = []
            for raw in lines:
                raw = raw.strip()
                if not raw:
                    continue
                try:
                    event = json.loads(raw)
                except ValueError:
                    report.unparseable_lines += 1
                    yield TailLine("info", f"unparseable line: {raw[:80]!r}")
                    continue
                if isinstance(event, dict):
                    fresh.append(event)
                    yield TailLine("event", format_event(event))
                else:
                    report.unparseable_lines += 1
            if fresh:
                report.events += len(fresh)
                fold_events(report, fresh)
        else:
            _sleep(poll_s)
        now = time.monotonic()
        if report.events and now - last_rollup >= rollup_every_s:
            last_rollup = now
            yield TailLine("rollup", format_rollup(report))


__all__ = ["TailLine", "follow", "format_event", "format_rollup"]
