"""Telemetry exporters: a JSONL event stream and a JSON metrics snapshot.

:class:`JsonlExporter` is a sink (attach with ``Telemetry.add_sink``)
that appends one JSON object per event, flushed per line so a killed run
leaves a readable partial stream -- the same contract as the campaign
ledger.

:func:`write_snapshot` serialises the final registry to a standalone
JSON report.  Field conventions deliberately match the committed search
benchmark (``BENCH_search.json`` / ``scripts/perf_report.py``): per-name
wall clock is ``wall_s``, the header carries ``schema`` / ``generated``
/ ``python`` / ``platform``, so the same diffing habits (and tools like
``campaign trend``) transfer.
"""

from __future__ import annotations

import json
import platform
import time
from pathlib import Path
from typing import Any, TextIO

from repro.obs.core import Telemetry

SNAPSHOT_SCHEMA = "repro-telemetry/v2"


class JsonlExporter:
    """Append-only JSONL sink; one instance per output path."""

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        if self.path.parent != Path(""):
            self.path.parent.mkdir(parents=True, exist_ok=True)
        self._fh: TextIO = open(self.path, "a", encoding="utf-8")

    def __call__(self, event: dict[str, Any]) -> None:
        self._fh.write(json.dumps(event, sort_keys=True, default=str) + "\n")
        self._fh.flush()

    def close(self) -> None:
        if not self._fh.closed:
            self._fh.close()

    def __enter__(self) -> JsonlExporter:
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()


def snapshot_report(tel: Telemetry) -> dict[str, Any]:
    """The end-of-run metrics snapshot as a JSON-able dict."""
    report: dict[str, Any] = {
        "schema": SNAPSHOT_SCHEMA,
        "generated": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "python": platform.python_version(),
        "platform": platform.platform(),
    }
    if tel.run_id:
        report["run_id"] = tel.run_id
    report.update(tel.snapshot())
    return report


def write_snapshot(tel: Telemetry, path: str | Path) -> Path:
    """Write :func:`snapshot_report` to ``path``; returns the path."""
    out = Path(path)
    if out.parent != Path(""):
        out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(
        json.dumps(snapshot_report(tel), indent=2, sort_keys=True, default=str) + "\n",
        encoding="utf-8",
    )
    return out
