"""Unified telemetry: spans, counters, JSONL event export.

The whole subsystem hangs off one gate, :func:`get`:

* ``REPRO_TELEMETRY`` unset/off (the default): :func:`get` returns
  ``None`` without allocating anything -- instrumented call sites do one
  ``if tel is None`` check and run their original bodies untouched.
  This is the provably-negligible disabled mode the benchmark gate
  relies on.
* ``REPRO_TELEMETRY=on`` (or a CLI ``--telemetry PATH``, which sets the
  variable so worker processes inherit it): :func:`get` lazily creates
  a process-wide :class:`~repro.obs.core.Telemetry` collector.  Attach
  a :class:`~repro.obs.export.JsonlExporter` sink to stream events;
  with no sinks the collector still aggregates (campaign workers embed
  their registry deltas in task results instead of exporting).

See ``docs/OBSERVABILITY.md`` for the span/counter model and the event
schema.
"""

from __future__ import annotations

import os
from collections.abc import Iterator
from contextlib import contextmanager

from repro.obs.core import (
    EVENT_SCHEMA_VERSION,
    HISTOGRAM_BOUNDS,
    Histogram,
    Mark,
    Span,
    SpanStats,
    Telemetry,
)
from repro.obs.export import (
    SNAPSHOT_SCHEMA,
    JsonlExporter,
    snapshot_report,
    write_snapshot,
)
from repro.obs.prom import (
    CONTENT_TYPE as PROM_CONTENT_TYPE,
)
from repro.obs.prom import (
    check_exposition,
    render_prometheus,
)
from repro.obs.schema import (
    ACCEPTED_VERSIONS,
    EVENT_KINDS,
    validate_event,
    validate_stream,
)
from repro.obs.trace import (
    TRACE_ENV,
    TRACE_HEADER,
    TraceContext,
    extract_env,
    extract_traceparent,
    format_traceparent,
    inject_env,
    new_context,
    parse_traceparent,
)

__all__ = [
    "ACCEPTED_VERSIONS",
    "EVENT_KINDS",
    "EVENT_SCHEMA_VERSION",
    "HISTOGRAM_BOUNDS",
    "PROM_CONTENT_TYPE",
    "SNAPSHOT_SCHEMA",
    "TRACE_ENV",
    "TRACE_HEADER",
    "Histogram",
    "JsonlExporter",
    "Mark",
    "Span",
    "SpanStats",
    "Telemetry",
    "TraceContext",
    "check_exposition",
    "configure",
    "enabled",
    "extract_env",
    "extract_traceparent",
    "format_traceparent",
    "get",
    "inject_env",
    "new_context",
    "parse_traceparent",
    "render_prometheus",
    "reset",
    "scope",
    "snapshot_report",
    "validate_event",
    "validate_stream",
    "write_snapshot",
]

ENV_VAR = "REPRO_TELEMETRY"
_TRUTHY = ("on", "1", "true", "yes")

#: the process-wide collector; stays None until telemetry is enabled
_active: Telemetry | None = None


def enabled() -> bool:
    """Whether the ``REPRO_TELEMETRY`` environment variable is on."""
    return os.environ.get(ENV_VAR, "off").strip().lower() in _TRUTHY


def get() -> Telemetry | None:
    """The process collector, or ``None`` when telemetry is disabled.

    This is the only call instrumented code makes on its boundary path.
    Disabled mode allocates nothing: no collector, no exporter, no
    event dicts -- just this env lookup per instrumented call (never
    per explored state; hot loops are not instrumented at all).
    """
    global _active
    if _active is not None:
        return _active
    if not enabled():
        return None
    _active = Telemetry()
    return _active


def configure(tel: Telemetry | None) -> Telemetry | None:
    """Install ``tel`` as the process collector; returns the previous one."""
    global _active
    prev = _active
    _active = tel
    return prev


def reset() -> None:
    """Drop the process collector (tests; end of a CLI telemetry session)."""
    configure(None)


@contextmanager
def scope(tel: Telemetry) -> Iterator[Telemetry]:
    """Temporarily install ``tel`` as the process collector."""
    prev = configure(tel)
    try:
        yield tel
    finally:
        configure(prev)
