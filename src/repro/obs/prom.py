"""Prometheus text exposition: render a registry, strictly check output.

:func:`render_prometheus` serialises a live :class:`~repro.obs.core.Telemetry`
registry in the text exposition format (version 0.0.4):

* counters -> ``repro_<name>_total``,
* gauges -> ``repro_<name>``,
* histograms -> cumulative ``_bucket{le="..."}`` series plus ``_sum`` /
  ``_count`` (the standard Prometheus histogram encoding, quantiles left
  to the scraper),
* span aggregates -> summary-style ``_seconds_sum`` / ``_seconds_count``
  per span name.

Metric names are sanitised (every non-``[a-zA-Z0-9_]`` run becomes one
``_``), namespaced under ``repro_``, and deduplicated; each family gets
``# HELP`` and ``# TYPE`` lines.

:func:`check_exposition` is the strict parser the tests and the CI
metrics-smoke step run over scraped output: format violations come back
as a list of messages (empty = clean), including histogram-specific
invariants (bucket monotonicity, ``+Inf`` == ``_count``, no duplicate
series).  It is deliberately independent of the renderer's internals so
it doubles as an oracle.
"""

from __future__ import annotations

import math
import re

from repro.obs.core import Histogram, Telemetry

#: the Content-Type a /metrics response must carry
CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_SANITISE_RE = re.compile(r"[^a-zA-Z0-9_]+")
_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?P<labels>\{[^{}]*\})?"
    r"\s+(?P<value>\S+)(?:\s+\d+)?$"
)
_LABELS_RE = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')


def _metric_name(name: str, *, suffix: str = "") -> str:
    base = _SANITISE_RE.sub("_", name).strip("_").lower()
    return f"repro_{base}{suffix}"


def _fmt(value: float) -> str:
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    if isinstance(value, float) and math.isnan(value):
        return "NaN"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _render_histogram(lines: list[str], metric: str, hist: Histogram) -> None:
    cum = 0
    for bound, count in zip(hist.bounds, hist.counts):
        cum += count
        lines.append(f'{metric}_bucket{{le="{_fmt(bound)}"}} {cum}')
    cum += hist.counts[-1]
    lines.append(f'{metric}_bucket{{le="+Inf"}} {cum}')
    lines.append(f"{metric}_sum {_fmt(hist.sum)}")
    lines.append(f"{metric}_count {hist.count}")


def render_prometheus(tel: Telemetry) -> str:
    """The registry in Prometheus text exposition format."""
    lines: list[str] = []
    seen: set[str] = set()

    def family(metric: str, kind: str, help_text: str) -> bool:
        if metric in seen:  # two registry names sanitising to one metric
            return False
        seen.add(metric)
        lines.append(f"# HELP {metric} {help_text}")
        lines.append(f"# TYPE {metric} {kind}")
        return True

    for name in sorted(tel.counters):
        metric = _metric_name(name, suffix="_total")
        if family(metric, "counter", f"repro counter {name}"):
            lines.append(f"{metric} {_fmt(tel.counters[name])}")
    for name in sorted(tel.gauges):
        metric = _metric_name(name)
        if family(metric, "gauge", f"repro gauge {name}"):
            lines.append(f"{metric} {_fmt(tel.gauges[name])}")
    for name in sorted(tel.histograms):
        metric = _metric_name(name)
        if family(metric, "histogram", f"repro histogram {name}"):
            _render_histogram(lines, metric, tel.histograms[name])
    for name in sorted(tel.span_stats):
        stats = tel.span_stats[name]
        metric = _metric_name(name, suffix="_seconds")
        if family(metric, "summary", f"repro span {name} wall clock"):
            lines.append(f"{metric}_sum {_fmt(round(stats.wall_s, 6))}")
            lines.append(f"{metric}_count {stats.count}")
    return "\n".join(lines) + "\n" if lines else ""


# ----------------------------------------------------------------------
# strict exposition-format checker (the CI metrics-smoke oracle)
# ----------------------------------------------------------------------
def _parse_value(text: str) -> float | None:
    if text == "+Inf":
        return math.inf
    if text == "-Inf":
        return -math.inf
    if text == "NaN":
        return math.nan
    try:
        return float(text)
    except ValueError:
        return None


def _base_family(sample_name: str, families: dict[str, str]) -> str | None:
    """The declared family a sample belongs to (histograms/summaries
    expose ``_bucket``/``_sum``/``_count`` children)."""
    if sample_name in families:
        return sample_name
    for suffix in ("_bucket", "_sum", "_count"):
        if sample_name.endswith(suffix) and sample_name[: -len(suffix)] in families:
            return sample_name[: -len(suffix)]
    return None


def check_exposition(text: str) -> list[str]:
    """Strictly parse Prometheus text exposition output.

    Returns violation messages (empty list = clean):

    * every sample belongs to a family declared by ``# TYPE`` (and the
      child suffix matches the declared type),
    * ``# HELP`` precedes samples of its family, names are legal,
    * sample values parse as floats (``+Inf``/``-Inf``/``NaN`` allowed),
    * no duplicate ``(name, labels)`` series,
    * histogram invariants: bucket counts cumulative (non-decreasing in
      ``le`` order), a ``+Inf`` bucket present and equal to ``_count``,
      ``_sum``/``_count`` present.
    """
    errors: list[str] = []
    families: dict[str, str] = {}
    helped: set[str] = set()
    series_seen: set[tuple[str, str]] = set()
    #: family -> list of (le, cumulative count) in appearance order
    buckets: dict[str, list[tuple[float, float]]] = {}
    hist_sum: dict[str, float] = {}
    hist_count: dict[str, float] = {}

    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.rstrip()
        if not line:
            continue
        if line.startswith("# HELP "):
            parts = line.split(None, 3)
            if len(parts) < 3:
                errors.append(f"line {lineno}: malformed HELP line")
                continue
            helped.add(parts[2])
            continue
        if line.startswith("# TYPE "):
            parts = line.split()
            if len(parts) != 4:
                errors.append(f"line {lineno}: malformed TYPE line")
                continue
            name, kind = parts[2], parts[3]
            if not _NAME_RE.match(name):
                errors.append(f"line {lineno}: illegal metric name {name!r}")
            if kind not in ("counter", "gauge", "histogram", "summary", "untyped"):
                errors.append(f"line {lineno}: unknown metric type {kind!r}")
            if name in families:
                errors.append(f"line {lineno}: duplicate TYPE for {name}")
            families[name] = kind
            continue
        if line.startswith("#"):
            continue  # comment
        m = _SAMPLE_RE.match(line)
        if m is None:
            errors.append(f"line {lineno}: unparseable sample {line!r}")
            continue
        sample_name = m.group("name")
        labels_text = m.group("labels") or ""
        value = _parse_value(m.group("value"))
        if value is None:
            errors.append(
                f"line {lineno}: bad sample value {m.group('value')!r}"
            )
            continue
        family = _base_family(sample_name, families)
        if family is None:
            errors.append(
                f"line {lineno}: sample {sample_name} has no TYPE declaration"
            )
            continue
        if family not in helped:
            errors.append(f"line {lineno}: family {family} has no HELP line")
        kind = families[family]
        if sample_name != family and kind not in ("histogram", "summary"):
            errors.append(
                f"line {lineno}: {kind} family {family} cannot expose "
                f"child sample {sample_name}"
            )
        key = (sample_name, labels_text)
        if key in series_seen:
            errors.append(
                f"line {lineno}: duplicate series {sample_name}{labels_text}"
            )
        series_seen.add(key)
        if kind == "histogram":
            labels = dict(_LABELS_RE.findall(labels_text))
            if sample_name.endswith("_bucket"):
                le = _parse_value(labels.get("le", ""))
                if le is None:
                    errors.append(
                        f"line {lineno}: histogram bucket without a "
                        f"parseable le label: {line!r}"
                    )
                else:
                    buckets.setdefault(family, []).append((le, value))
            elif sample_name.endswith("_sum"):
                hist_sum[family] = value
            elif sample_name.endswith("_count"):
                hist_count[family] = value

    for family, rows in buckets.items():
        les = [le for le, _ in rows]
        if les != sorted(les):
            errors.append(f"histogram {family}: buckets not in le order")
        counts = [c for _, c in rows]
        if any(b < a for a, b in zip(counts, counts[1:])):
            errors.append(
                f"histogram {family}: bucket counts are not cumulative"
            )
        if not les or les[-1] != math.inf:
            errors.append(f"histogram {family}: missing the +Inf bucket")
        elif family in hist_count and counts[-1] != hist_count[family]:
            errors.append(
                f"histogram {family}: +Inf bucket {counts[-1]:g} != "
                f"_count {hist_count[family]:g}"
            )
        if family not in hist_sum:
            errors.append(f"histogram {family}: missing _sum")
        if family not in hist_count:
            errors.append(f"histogram {family}: missing _count")
    for family, kind in families.items():
        if kind == "histogram" and family not in buckets:
            errors.append(f"histogram {family}: declared but has no buckets")
    return errors


def parse_samples(text: str) -> dict[str, dict[str, float]]:
    """``{sample_name: {labels_text: value}}`` -- a convenience view for
    tests asserting on specific series (labels text normalised verbatim)."""
    out: dict[str, dict[str, float]] = {}
    for raw in text.splitlines():
        line = raw.rstrip()
        if not line or line.startswith("#"):
            continue
        m = _SAMPLE_RE.match(line)
        if m is None:
            continue
        value = _parse_value(m.group("value"))
        if value is None:
            continue
        out.setdefault(m.group("name"), {})[m.group("labels") or ""] = value
    return out


__all__: list[str] = [
    "CONTENT_TYPE",
    "check_exposition",
    "parse_samples",
    "render_prometheus",
]
