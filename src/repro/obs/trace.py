"""W3C-style trace context: ids, carriers, inject/extract.

One verification request that fans out -- event loop -> batch thread ->
campaign pool worker -> remote shard worker -- leaves events in several
processes.  A :class:`TraceContext` names the request (``trace_id``) and
the emitting position in its call tree (``span_id``); every event
carries the trace id and every span event carries globally unique span
ids (see ``repro.obs.schema`` v2), so merged streams reassemble into one
tree with ``repro telemetry trace``.

Two carriers move a context across process/host boundaries:

* the ``X-Repro-Trace`` HTTP header (W3C ``traceparent`` shaped:
  ``00-<32 hex trace>-<16 hex span>-01``), injected by
  :class:`~repro.serve.client.ServeClient` and extracted by the server;
* the ``REPRO_TRACE`` environment variable (same format), inherited by
  campaign pool workers spawned under an active trace.  Per-task
  carriers (one batch can hold tasks from different requests) travel as
  plain strings through :func:`~repro.campaign.runner.run_campaign`.

Lenient :func:`extract_traceparent` returns ``None`` on anything
malformed -- a bad header must never fail a request -- while the strict
:func:`parse_traceparent` raises for callers that own the string.
"""

from __future__ import annotations

import os
import re
from collections.abc import Mapping
from dataclasses import dataclass

#: HTTP header carrying the context between serve client and server
TRACE_HEADER = "X-Repro-Trace"
#: environment carrier inherited by spawned worker processes
TRACE_ENV = "REPRO_TRACE"

_TRACEPARENT_RE = re.compile(
    r"^00-([0-9a-f]{32})-([0-9a-f]{16})-[0-9a-f]{2}$"
)


def new_trace_id() -> str:
    """A fresh 32-hex-digit trace id (nonzero, collision-negligible)."""
    return os.urandom(16).hex()


def new_span_id() -> str:
    """A fresh 16-hex-digit span id."""
    return os.urandom(8).hex()


@dataclass(frozen=True)
class TraceContext:
    """A position in a distributed trace: which request, which parent."""

    trace_id: str
    span_id: str

    def __post_init__(self) -> None:
        if not re.fullmatch(r"[0-9a-f]{32}", self.trace_id):
            raise ValueError(
                f"trace_id must be 32 lowercase hex digits, got {self.trace_id!r}"
            )
        if not re.fullmatch(r"[0-9a-f]{16}", self.span_id):
            raise ValueError(
                f"span_id must be 16 lowercase hex digits, got {self.span_id!r}"
            )

    def child(self) -> TraceContext:
        """Same trace, fresh span id (the context a new child span gets)."""
        return TraceContext(self.trace_id, new_span_id())


def new_context() -> TraceContext:
    """A root context for a fresh trace."""
    return TraceContext(new_trace_id(), new_span_id())


def format_traceparent(ctx: TraceContext) -> str:
    """``00-<trace>-<span>-01``: the header/env wire format."""
    return f"00-{ctx.trace_id}-{ctx.span_id}-01"


def parse_traceparent(text: str) -> TraceContext:
    """Strict parse; raises :class:`ValueError` on malformed input."""
    m = _TRACEPARENT_RE.match(text.strip().lower())
    if m is None:
        raise ValueError(
            f"malformed traceparent {text!r} "
            "(want 00-<32 hex>-<16 hex>-<2 hex>)"
        )
    return TraceContext(m.group(1), m.group(2))


def extract_traceparent(text: str | None) -> TraceContext | None:
    """Lenient parse: ``None`` on missing/malformed (never raises)."""
    if not text or not isinstance(text, str):
        return None
    try:
        return parse_traceparent(text)
    except ValueError:
        return None


def inject_env(ctx: TraceContext, env: dict[str, str] | None = None) -> None:
    """Write the carrier into ``env`` (default ``os.environ``) so spawned
    worker processes inherit the trace."""
    (os.environ if env is None else env)[TRACE_ENV] = format_traceparent(ctx)


def extract_env(env: Mapping[str, str] | None = None) -> TraceContext | None:
    """Read the carrier back (lenient); ``None`` when absent/malformed."""
    source = os.environ if env is None else env
    return extract_traceparent(source.get(TRACE_ENV))


__all__ = [
    "TRACE_ENV",
    "TRACE_HEADER",
    "TraceContext",
    "extract_env",
    "extract_traceparent",
    "format_traceparent",
    "inject_env",
    "new_context",
    "new_span_id",
    "new_trace_id",
]
