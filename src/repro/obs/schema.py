"""The telemetry JSONL event schema, and its validator.

Every line of a telemetry event stream is one JSON object with exactly
these base fields (see ``docs/OBSERVABILITY.md`` for the prose spec):

``v``
    int -- event schema version; currently ``1``.
``t``
    float -- wall-clock UNIX timestamp of emission.
``kind``
    one of :data:`EVENT_KINDS`.
``name``
    non-empty str -- span name, counter name, or event name.
``span``
    int or null -- for ``span_start``/``span_end``, the span's own id;
    for everything else, the id of the enclosing span (null at top
    level).  Ids are unique within one collector.
``parent``
    int or null -- the parent span id (``span_*`` kinds only; null
    otherwise and for root spans).
``attrs``
    object -- free-form JSON-able annotations.

Kind-specific extras:

``span_end``
    ``dur_s``: non-negative float, the span's wall-clock duration.
``counter`` / ``gauge``
    ``value``: finite number (the increment, resp. the new level).
``run_end``
    ``attrs.snapshot``: the final registry snapshot (counters, gauges,
    per-name span aggregates).

:func:`validate_event` returns a list of human-readable violations
(empty = valid); :func:`validate_stream` folds that over a parsed event
iterable.  The CI telemetry-smoke job and ``python -m repro telemetry
report --strict`` are both built on these.
"""

from __future__ import annotations

import math
from typing import Any

from repro.obs.core import EVENT_SCHEMA_VERSION

EVENT_KINDS = (
    "run_start",
    "span_start",
    "span_end",
    "counter",
    "gauge",
    "event",
    "run_end",
)

_BASE_FIELDS = ("v", "t", "kind", "name", "span", "parent", "attrs")


def _is_number(value: Any) -> bool:
    return (
        isinstance(value, (int, float))
        and not isinstance(value, bool)
        and math.isfinite(value)
    )


def validate_event(event: Any) -> list[str]:
    """Violations of the documented event shape (empty list = valid)."""
    if not isinstance(event, dict):
        return [f"event is {type(event).__name__}, not an object"]
    errors: list[str] = []
    for fld in _BASE_FIELDS:
        if fld not in event:
            errors.append(f"missing field {fld!r}")
    if errors:
        return errors
    if event["v"] != EVENT_SCHEMA_VERSION:
        errors.append(f"unknown schema version {event['v']!r}")
    if not _is_number(event["t"]):
        errors.append(f"t is not a finite number: {event['t']!r}")
    kind = event["kind"]
    if kind not in EVENT_KINDS:
        errors.append(f"unknown kind {kind!r}")
    name = event["name"]
    if not isinstance(name, str) or not name:
        errors.append(f"name must be a non-empty string, got {name!r}")
    for fld in ("span", "parent"):
        if event[fld] is not None and not isinstance(event[fld], int):
            errors.append(f"{fld} must be an int or null, got {event[fld]!r}")
    if not isinstance(event["attrs"], dict):
        errors.append(f"attrs must be an object, got {type(event['attrs']).__name__}")
    if kind == "span_end":
        dur = event.get("dur_s")
        if not _is_number(dur) or dur < 0:
            errors.append(f"span_end needs a non-negative dur_s, got {dur!r}")
    if kind in ("counter", "gauge") and not _is_number(event.get("value")):
        errors.append(f"{kind} needs a numeric value, got {event.get('value')!r}")
    if kind == "span_start" and event["span"] is None:
        errors.append("span_start must carry its own span id")
    return errors


def validate_stream(events: list[dict[str, Any]]) -> list[tuple[int, str]]:
    """``(index, violation)`` pairs over a parsed event list."""
    out: list[tuple[int, str]] = []
    for i, event in enumerate(events):
        for err in validate_event(event):
            out.append((i, err))
    return out
