"""The telemetry JSONL event schema, and its validator.

Every line of a telemetry event stream is one JSON object with these
base fields (see ``docs/OBSERVABILITY.md`` for the prose spec):

``v``
    int -- event schema version; ``2`` is current, ``1`` streams
    (recorded before distributed tracing) still validate.
``t``
    float -- wall-clock UNIX timestamp of emission.
``kind``
    one of :data:`EVENT_KINDS` (``hist`` is v2-only).
``name``
    non-empty str -- span name, counter name, or event name.
``span``
    int or null -- for ``span_start``/``span_end``, the span's own id;
    for everything else, the id of the enclosing span (null at top
    level).  Ids are unique within one collector only.
``parent``
    int or null -- the parent span id (``span_*`` kinds only; null
    otherwise and for root spans).
``attrs``
    object -- free-form JSON-able annotations.

v2 adds distributed-trace identity:

``trace``
    32 lowercase hex digits or null -- the trace (request) the event
    belongs to.  Required non-null on span events.
``sid`` / ``psid``
    span events only: the span's globally unique 16-hex id and its
    parent's (null for trace roots).  Unlike ``span``/``parent`` these
    survive merging streams from different processes, so one request's
    span tree reassembles from any mix of serve/worker streams.

Kind-specific extras:

``span_end``
    ``dur_s``: non-negative float, the span's wall-clock duration.
``counter`` / ``gauge`` / ``hist``
    ``value``: finite number (the increment, the new level, resp. the
    observation folded into the named histogram).
``run_end``
    ``attrs.snapshot``: the final registry snapshot (counters, gauges,
    histograms, per-name span aggregates).

:func:`validate_event` returns a list of human-readable violations
(empty = valid); :func:`validate_stream` folds that over a parsed event
iterable.  The CI telemetry-smoke job and ``python -m repro telemetry
report --strict`` are both built on these.
"""

from __future__ import annotations

import math
import re
from typing import Any

from repro.obs.core import EVENT_SCHEMA_VERSION

EVENT_KINDS = (
    "run_start",
    "span_start",
    "span_end",
    "counter",
    "gauge",
    "hist",
    "event",
    "run_end",
)

#: schema versions the validator accepts (v1: pre-tracing streams)
ACCEPTED_VERSIONS = (1, EVENT_SCHEMA_VERSION)

_BASE_FIELDS = ("v", "t", "kind", "name", "span", "parent", "attrs")

_TRACE_RE = re.compile(r"^[0-9a-f]{32}$")
_SID_RE = re.compile(r"^[0-9a-f]{16}$")


def _is_number(value: Any) -> bool:
    return (
        isinstance(value, (int, float))
        and not isinstance(value, bool)
        and math.isfinite(value)
    )


def _validate_v2_trace(event: dict[str, Any], errors: list[str]) -> None:
    """The v2-only identity fields: ``trace`` always, ``sid``/``psid``
    on span events."""
    kind = event["kind"]
    if "trace" not in event:
        errors.append("v2 event is missing the trace field")
        return
    trace = event["trace"]
    if trace is not None and (
        not isinstance(trace, str) or not _TRACE_RE.match(trace)
    ):
        errors.append(f"trace must be 32 hex digits or null, got {trace!r}")
    if kind not in ("span_start", "span_end"):
        return
    if trace is None:
        errors.append(f"{kind} must carry a non-null trace id")
    sid = event.get("sid")
    if not isinstance(sid, str) or not _SID_RE.match(sid):
        errors.append(f"{kind} needs a 16-hex sid, got {sid!r}")
    psid = event.get("psid")
    if psid is not None and (
        not isinstance(psid, str) or not _SID_RE.match(psid)
    ):
        errors.append(f"psid must be 16 hex digits or null, got {psid!r}")


def validate_event(event: Any) -> list[str]:
    """Violations of the documented event shape (empty list = valid)."""
    if not isinstance(event, dict):
        return [f"event is {type(event).__name__}, not an object"]
    errors: list[str] = []
    for fld in _BASE_FIELDS:
        if fld not in event:
            errors.append(f"missing field {fld!r}")
    if errors:
        return errors
    version = event["v"]
    if version not in ACCEPTED_VERSIONS:
        errors.append(
            f"unknown schema version {version!r} "
            f"(accepted: {', '.join(map(str, ACCEPTED_VERSIONS))})"
        )
        return errors
    if not _is_number(event["t"]):
        errors.append(f"t is not a finite number: {event['t']!r}")
    kind = event["kind"]
    if kind not in EVENT_KINDS:
        errors.append(f"unknown kind {kind!r}")
    elif kind == "hist" and version < 2:
        errors.append("hist events need schema v2")
    name = event["name"]
    if not isinstance(name, str) or not name:
        errors.append(f"name must be a non-empty string, got {name!r}")
    for fld in ("span", "parent"):
        if event[fld] is not None and not isinstance(event[fld], int):
            errors.append(f"{fld} must be an int or null, got {event[fld]!r}")
    if not isinstance(event["attrs"], dict):
        errors.append(f"attrs must be an object, got {type(event['attrs']).__name__}")
    if kind == "span_end":
        dur = event.get("dur_s")
        if not _is_number(dur) or dur < 0:
            errors.append(f"span_end needs a non-negative dur_s, got {dur!r}")
    if kind in ("counter", "gauge", "hist") and not _is_number(event.get("value")):
        errors.append(f"{kind} needs a numeric value, got {event.get('value')!r}")
    if kind == "span_start" and event["span"] is None:
        errors.append("span_start must carry its own span id")
    if version >= 2 and kind in EVENT_KINDS:
        _validate_v2_trace(event, errors)
    return errors


def validate_stream(events: list[dict[str, Any]]) -> list[tuple[int, str]]:
    """``(index, violation)`` pairs over a parsed event list."""
    out: list[tuple[int, str]] = []
    for i, event in enumerate(events):
        for err in validate_event(event):
            out.append((i, err))
    return out
