"""Summarise a telemetry JSONL event stream (``repro telemetry report``).

The summariser rebuilds everything from the events alone -- counters are
re-summed from ``counter`` events, span aggregates from ``span_end``
events -- so it doubles as an end-to-end check that the stream is
self-sufficient.  For campaign streams it reproduces the ledger's
numbers without the ledger: per-task wall times come from the
``campaign.task`` spans and the cache hit rate from the
``campaign.cache.*`` counters.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro.obs.core import SpanStats
from repro.obs.schema import validate_event

#: span name the campaign runner emits once per finalized task
CAMPAIGN_TASK_SPAN = "campaign.task"


@dataclass
class TelemetryReport:
    """Everything the summariser recovered from one event stream."""

    path: str
    events: int = 0
    unparseable_lines: int = 0
    #: (event index, violation) pairs from the schema validator
    invalid: list[tuple[int, str]] = field(default_factory=list)
    counters: dict[str, float] = field(default_factory=dict)
    gauges: dict[str, float] = field(default_factory=dict)
    spans: dict[str, SpanStats] = field(default_factory=dict)
    #: campaign.task span attrs + duration, in emission order
    tasks: list[dict[str, Any]] = field(default_factory=list)
    run_names: list[str] = field(default_factory=list)

    @property
    def schema_valid(self) -> bool:
        return not self.invalid and not self.unparseable_lines

    def task_wall_times(self) -> dict[str, float]:
        """Latest wall time per task name, reproduced from events alone."""
        out: dict[str, float] = {}
        for task in self.tasks:
            out[str(task.get("name", ""))] = float(task.get("dur_s", 0.0))
        return out

    def cache_hit_rate(self) -> float | None:
        """hits / lookups from the campaign counters; None without a cache."""
        hits = self.counters.get("campaign.cache.hits", 0)
        lookups = hits + self.counters.get("campaign.cache.misses", 0)
        if not lookups:
            return None
        return hits / lookups

    def engine_fallbacks(self) -> dict[str, float]:
        """Nonzero engine-fallback counts (wide specs, jobs refusals).

        Every ``*.fallback.*`` counter the accelerated engines emit when
        they delegate to the fast engine -- searches that silently lost
        their speedup.  Empty when every search ran on its chosen engine.
        """
        return {
            k: v for k, v in self.counters.items() if ".fallback." in k and v
        }

    def auto_engine_picks(self) -> dict[str, float]:
        """How often ``--search-engine auto`` resolved to each engine."""
        prefix = "search.engine.auto."
        return {
            k[len(prefix):]: v
            for k, v in self.counters.items()
            if k.startswith(prefix) and v
        }

    def certificate_activity(self) -> dict[str, float]:
        """Nonzero certificate-layer counters (witness emission, replay,
        adaptive decisions), keyed without the ``lint.certificate.`` prefix."""
        prefix = "lint.certificate."
        return {
            k[len(prefix):]: v
            for k, v in self.counters.items()
            if k.startswith(prefix) and v
        }

    def to_json(self) -> dict[str, Any]:
        return {
            "path": self.path,
            "events": self.events,
            "unparseable_lines": self.unparseable_lines,
            "invalid": [list(pair) for pair in self.invalid],
            "counters": dict(sorted(self.counters.items())),
            "gauges": dict(sorted(self.gauges.items())),
            "spans": {k: self.spans[k].to_json() for k in sorted(self.spans)},
            "tasks": self.tasks,
            "cache_hit_rate": self.cache_hit_rate(),
            "engine_fallbacks": dict(sorted(self.engine_fallbacks().items())),
            "auto_engine_picks": dict(sorted(self.auto_engine_picks().items())),
            "certificate_activity": dict(
                sorted(self.certificate_activity().items())
            ),
        }


def read_events(path: str | Path) -> tuple[list[dict[str, Any]], int]:
    """Parsed events plus the count of unparseable lines (crash tails)."""
    events: list[dict[str, Any]] = []
    bad = 0
    with open(path, encoding="utf-8") as fh:
        for raw in fh:
            raw = raw.strip()
            if not raw:
                continue
            try:
                event = json.loads(raw)
            except ValueError:
                bad += 1
                continue
            if isinstance(event, dict):
                events.append(event)
            else:
                bad += 1
    return events, bad


def summarize(path: str | Path) -> TelemetryReport:
    """Validate and aggregate one JSONL event stream."""
    events, bad = read_events(path)
    report = TelemetryReport(path=str(path), events=len(events), unparseable_lines=bad)
    for i, event in enumerate(events):
        errors = validate_event(event)
        if errors:
            report.invalid.extend((i, err) for err in errors)
            continue
        kind, name = event["kind"], event["name"]
        if kind == "counter":
            report.counters[name] = report.counters.get(name, 0) + event["value"]
        elif kind == "gauge":
            report.gauges[name] = event["value"]
        elif kind == "span_end":
            report.spans.setdefault(name, SpanStats()).add(event["dur_s"])
            if name == CAMPAIGN_TASK_SPAN:
                report.tasks.append({**event["attrs"], "dur_s": event["dur_s"]})
        elif kind in ("run_start", "run_end"):
            if name not in report.run_names:
                report.run_names.append(name)
    return report


def render(report: TelemetryReport, *, top: int = 10) -> str:
    """Human-readable summary (the default ``telemetry report`` output)."""
    from repro.experiments import render_kv, render_table

    head: dict[str, Any] = {
        "stream": report.path,
        "events": report.events,
        "schema violations": len(report.invalid),
        "unparseable lines": report.unparseable_lines,
    }
    if report.run_names:
        head["runs"] = ", ".join(report.run_names)
    hit_rate = report.cache_hit_rate()
    if hit_rate is not None:
        head["campaign cache hit rate"] = f"{hit_rate:.0%}"
    fallbacks = report.engine_fallbacks()
    if fallbacks:
        head["engine fallbacks"] = ", ".join(
            f"{k}={v:g}" for k, v in sorted(fallbacks.items())
        )
    picks = report.auto_engine_picks()
    if picks:
        head["auto engine picks"] = ", ".join(
            f"{k}={v:g}" for k, v in sorted(picks.items())
        )
    certs = report.certificate_activity()
    if certs:
        head["certificate activity"] = ", ".join(
            f"{k}={v:g}" for k, v in sorted(certs.items())
        )
    parts = [render_kv(head, title="telemetry report")]

    if report.spans:
        rows = [
            {
                "span": name,
                "count": stats.count,
                "total (s)": round(stats.wall_s, 3),
                "mean (s)": round(stats.wall_s / stats.count, 4),
                "max (s)": round(stats.max_s, 4),
            }
            for name, stats in sorted(
                report.spans.items(), key=lambda kv: -kv[1].wall_s
            )
        ]
        parts.append(render_table(rows, title="spans"))

    if report.counters:
        parts.append(
            render_kv(
                {k: round(v, 6) for k, v in sorted(report.counters.items())},
                title="counters",
            )
        )

    walls = report.task_wall_times()
    if walls:
        ranked = sorted(walls.items(), key=lambda kv: -kv[1])[:top]
        rows = [{"task": name, "wall (s)": round(w, 3)} for name, w in ranked]
        parts.append(render_table(rows, title=f"slowest campaign tasks (top {top})"))

    if report.invalid:
        lines = [
            f"  event {i}: {err}" for i, err in report.invalid[:20]
        ]
        if len(report.invalid) > 20:
            lines.append(f"  ... ({len(report.invalid) - 20} more)")
        parts.append("schema violations:\n" + "\n".join(lines))
    return "\n\n".join(parts)
