"""Summarise a telemetry JSONL event stream (``repro telemetry report``).

The summariser rebuilds everything from the events alone -- counters are
re-summed from ``counter`` events, span aggregates from ``span_end``
events, histograms from ``hist`` observations -- so it doubles as an
end-to-end check that the stream is self-sufficient.  For campaign
streams it reproduces the ledger's numbers without the ledger: per-task
wall times come from the ``campaign.task`` spans and the cache hit rate
from the ``campaign.cache.*`` counters.

``repro telemetry trace`` is built on :func:`build_span_tree`: schema v2
events carry globally unique ``sid``/``psid`` span ids, so any merged
mix of serve/worker/CLI streams reassembles into one rooted tree per
``trace`` id.
"""

from __future__ import annotations

import json
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro.obs.core import Histogram, SpanStats
from repro.obs.schema import validate_event

#: span name the campaign runner emits once per finalized task
CAMPAIGN_TASK_SPAN = "campaign.task"

#: per-engine phase-second counters (see docs/OBSERVABILITY.md):
#: ``<engine>path.phase.<phase>_s``
_PHASE_COUNTER_RE = re.compile(r"^(fast|vector|kernel)path\.phase\.(\w+)_s$")


class EventStreamError(Exception):
    """A named defect in an events file: missing, empty, or unreadable.

    Raised by :func:`read_events`/:func:`summarize` so CLI commands can
    print one clear line instead of a traceback.
    """


@dataclass
class TelemetryReport:
    """Everything the summariser recovered from one event stream."""

    path: str
    events: int = 0
    unparseable_lines: int = 0
    #: (event index, violation) pairs from the schema validator
    invalid: list[tuple[int, str]] = field(default_factory=list)
    counters: dict[str, float] = field(default_factory=dict)
    gauges: dict[str, float] = field(default_factory=dict)
    histograms: dict[str, Histogram] = field(default_factory=dict)
    spans: dict[str, SpanStats] = field(default_factory=dict)
    #: campaign.task span attrs + duration, in emission order
    tasks: list[dict[str, Any]] = field(default_factory=list)
    run_names: list[str] = field(default_factory=list)
    #: distinct trace ids in first-seen order
    traces: list[str] = field(default_factory=list)

    @property
    def schema_valid(self) -> bool:
        return not self.invalid and not self.unparseable_lines

    def task_wall_times(self) -> dict[str, float]:
        """Latest wall time per task name, reproduced from events alone."""
        out: dict[str, float] = {}
        for task in self.tasks:
            out[str(task.get("name", ""))] = float(task.get("dur_s", 0.0))
        return out

    def cache_hit_rate(self) -> float | None:
        """hits / lookups from the campaign counters; None without a cache."""
        hits = self.counters.get("campaign.cache.hits", 0)
        lookups = hits + self.counters.get("campaign.cache.misses", 0)
        if not lookups:
            return None
        return hits / lookups

    def engine_fallbacks(self) -> dict[str, float]:
        """Nonzero engine-fallback counts (wide specs, jobs refusals).

        Every ``*.fallback.*`` counter the accelerated engines emit when
        they delegate to the fast engine -- searches that silently lost
        their speedup.  Empty when every search ran on its chosen engine.
        """
        return {
            k: v for k, v in self.counters.items() if ".fallback." in k and v
        }

    def auto_engine_picks(self) -> dict[str, float]:
        """How often ``--search-engine auto`` resolved to each engine."""
        prefix = "search.engine.auto."
        return {
            k[len(prefix):]: v
            for k, v in self.counters.items()
            if k.startswith(prefix) and v
        }

    def certificate_activity(self) -> dict[str, float]:
        """Nonzero certificate-layer counters (witness emission, replay,
        adaptive decisions), keyed without the ``lint.certificate.`` prefix."""
        prefix = "lint.certificate."
        return {
            k[len(prefix):]: v
            for k, v in self.counters.items()
            if k.startswith(prefix) and v
        }

    def engine_phases(self) -> dict[str, dict[str, float]]:
        """Per-engine per-phase seconds, ``{engine: {phase: seconds}}``,
        from the ``<engine>path.phase.<phase>_s`` profiling counters."""
        out: dict[str, dict[str, float]] = {}
        for name, value in self.counters.items():
            m = _PHASE_COUNTER_RE.match(name)
            if m is not None and value:
                out.setdefault(m.group(1), {})[m.group(2)] = value
        return out

    def to_json(self) -> dict[str, Any]:
        return {
            "path": self.path,
            "events": self.events,
            "unparseable_lines": self.unparseable_lines,
            "invalid": [list(pair) for pair in self.invalid],
            "counters": dict(sorted(self.counters.items())),
            "gauges": dict(sorted(self.gauges.items())),
            "histograms": {
                k: self.histograms[k].summary() for k in sorted(self.histograms)
            },
            "spans": {k: self.spans[k].to_json() for k in sorted(self.spans)},
            "tasks": self.tasks,
            "traces": self.traces,
            "cache_hit_rate": self.cache_hit_rate(),
            "engine_fallbacks": dict(sorted(self.engine_fallbacks().items())),
            "auto_engine_picks": dict(sorted(self.auto_engine_picks().items())),
            "engine_phases": {
                k: dict(sorted(v.items()))
                for k, v in sorted(self.engine_phases().items())
            },
            "certificate_activity": dict(
                sorted(self.certificate_activity().items())
            ),
        }


def read_events(path: str | Path) -> tuple[list[dict[str, Any]], int]:
    """Parsed events plus the count of unparseable lines (crash tails).

    Raises :class:`EventStreamError` (a named defect, not a traceback)
    when the file is missing, empty, or contains no parseable events at
    all -- a truncated-mid-line tail on an otherwise healthy stream is
    tolerated and returned in the bad-line count instead.
    """
    path = Path(path)
    try:
        text = path.read_text(encoding="utf-8")
    except FileNotFoundError:
        raise EventStreamError(
            f"events file not found: {path} "
            "(record one with --telemetry PATH)"
        ) from None
    except IsADirectoryError:
        raise EventStreamError(f"{path} is a directory, not an events file") from None
    except OSError as exc:
        raise EventStreamError(f"cannot read events file {path}: {exc}") from None
    if not text.strip():
        raise EventStreamError(
            f"events file is empty: {path} "
            "(the recording run emitted nothing, or was killed before its "
            "first event flushed)"
        )
    events: list[dict[str, Any]] = []
    bad = 0
    for raw in text.splitlines():
        raw = raw.strip()
        if not raw:
            continue
        try:
            event = json.loads(raw)
        except ValueError:
            bad += 1
            continue
        if isinstance(event, dict):
            events.append(event)
        else:
            bad += 1
    if not events:
        raise EventStreamError(
            f"events file has no parseable events: {path} "
            f"({bad} unparseable line{'s' if bad != 1 else ''} -- truncated "
            "mid-line or not a telemetry JSONL stream?)"
        )
    return events, bad


def summarize(path: str | Path) -> TelemetryReport:
    """Validate and aggregate one JSONL event stream."""
    events, bad = read_events(path)
    report = TelemetryReport(path=str(path), events=len(events), unparseable_lines=bad)
    fold_events(report, events)
    return report


def fold_events(report: TelemetryReport, events: list[dict[str, Any]]) -> None:
    """Aggregate ``events`` into ``report`` (the tail rollup reuses this
    incrementally)."""
    base = report.events - len(events) if report.events >= len(events) else 0
    for i, event in enumerate(events, start=base):
        errors = validate_event(event)
        if errors:
            report.invalid.extend((i, err) for err in errors)
            continue
        trace = event.get("trace")
        if isinstance(trace, str) and trace not in report.traces:
            report.traces.append(trace)
        kind, name = event["kind"], event["name"]
        if kind == "counter":
            report.counters[name] = report.counters.get(name, 0) + event["value"]
        elif kind == "gauge":
            report.gauges[name] = event["value"]
        elif kind == "hist":
            hist = report.histograms.get(name)
            if hist is None:
                hist = report.histograms[name] = Histogram()
            hist.observe(event["value"])
        elif kind == "span_end":
            report.spans.setdefault(name, SpanStats()).add(event["dur_s"])
            if name == CAMPAIGN_TASK_SPAN:
                report.tasks.append({**event["attrs"], "dur_s": event["dur_s"]})
        elif kind in ("run_start", "run_end"):
            if name not in report.run_names:
                report.run_names.append(name)


# ----------------------------------------------------------------------
# span trees (``repro telemetry trace``)
# ----------------------------------------------------------------------
@dataclass
class SpanNode:
    """One reassembled span in a trace tree."""

    sid: str
    name: str
    psid: str | None = None
    start_t: float | None = None
    dur_s: float | None = None
    attrs: dict[str, Any] = field(default_factory=dict)
    children: list[SpanNode] = field(default_factory=list)

    def walk(self):
        yield self
        for child in self.children:
            yield from child.walk()

    def to_json(self) -> dict[str, Any]:
        return {
            "sid": self.sid,
            "psid": self.psid,
            "name": self.name,
            "start_t": self.start_t,
            "dur_s": self.dur_s,
            "attrs": self.attrs,
            "children": [c.to_json() for c in self.children],
        }


def trace_ids(events: list[dict[str, Any]]) -> dict[str, int]:
    """``{trace_id: span count}`` over a parsed stream, first-seen order."""
    out: dict[str, int] = {}
    for event in events:
        trace = event.get("trace")
        if isinstance(trace, str):
            if event.get("kind") == "span_start":
                out[trace] = out.get(trace, 0) + 1
            else:
                out.setdefault(trace, 0)
    return out


def build_span_tree(
    events: list[dict[str, Any]], trace_id: str
) -> list[SpanNode]:
    """Reassemble one trace's span tree from any merged v2 stream.

    Spans pair by globally unique ``sid`` (``span_start`` gives the start
    time and attrs, ``span_end`` the duration and final attrs); parentage
    follows ``psid``.  Returns the list of roots -- a single connected
    request yields exactly one.  Spans whose parent never appears in the
    stream (e.g. a worker stream read without the serve stream) become
    roots, so partial merges still render.
    """
    nodes: dict[str, SpanNode] = {}
    order: list[str] = []
    for event in events:
        if event.get("trace") != trace_id:
            continue
        kind = event.get("kind")
        if kind not in ("span_start", "span_end"):
            continue
        sid = event.get("sid")
        if not isinstance(sid, str):
            continue
        node = nodes.get(sid)
        if node is None:
            node = nodes[sid] = SpanNode(sid=sid, name=str(event.get("name", "")))
            order.append(sid)
        psid = event.get("psid")
        if isinstance(psid, str):
            node.psid = psid
        if kind == "span_start":
            t = event.get("t")
            if isinstance(t, (int, float)):
                node.start_t = float(t)
            attrs = event.get("attrs")
            if isinstance(attrs, dict):
                node.attrs.update(attrs)
        else:
            dur = event.get("dur_s")
            if isinstance(dur, (int, float)):
                node.dur_s = float(dur)
            attrs = event.get("attrs")
            if isinstance(attrs, dict):
                node.attrs.update(attrs)
    roots: list[SpanNode] = []
    for sid in order:
        node = nodes[sid]
        parent = nodes.get(node.psid) if node.psid is not None else None
        if parent is None or parent is node:
            roots.append(node)
        else:
            parent.children.append(node)
    for node in nodes.values():
        node.children.sort(key=lambda n: (n.start_t is None, n.start_t or 0.0))
    return roots


def render_span_tree(roots: list[SpanNode], trace_id: str) -> str:
    """An indented text rendering of one trace's span tree."""
    lines = [f"trace {trace_id}"]

    def fmt(node: SpanNode, depth: int) -> None:
        dur = f" {node.dur_s * 1000:.1f}ms" if node.dur_s is not None else ""
        keys = ("endpoint", "kind", "scenario", "name", "verdict", "source",
                "engine", "spec")
        annot = ", ".join(
            f"{k}={node.attrs[k]}" for k in keys
            if node.attrs.get(k) not in (None, "")
        )
        annot = f" [{annot}]" if annot else ""
        lines.append(f"{'  ' * (depth + 1)}{node.name}{dur}{annot}")
        for child in node.children:
            fmt(child, depth + 1)

    for root in roots:
        fmt(root, 0)
    return "\n".join(lines)


def render(report: TelemetryReport, *, top: int = 10) -> str:
    """Human-readable summary (the default ``telemetry report`` output)."""
    from repro.experiments import render_kv, render_table

    head: dict[str, Any] = {
        "stream": report.path,
        "events": report.events,
        "schema violations": len(report.invalid),
        "unparseable lines": report.unparseable_lines,
    }
    if report.run_names:
        head["runs"] = ", ".join(report.run_names)
    if report.traces:
        head["traces"] = len(report.traces)
    hit_rate = report.cache_hit_rate()
    if hit_rate is not None:
        head["campaign cache hit rate"] = f"{hit_rate:.0%}"
    fallbacks = report.engine_fallbacks()
    if fallbacks:
        head["engine fallbacks"] = ", ".join(
            f"{k}={v:g}" for k, v in sorted(fallbacks.items())
        )
    picks = report.auto_engine_picks()
    if picks:
        head["auto engine picks"] = ", ".join(
            f"{k}={v:g}" for k, v in sorted(picks.items())
        )
    certs = report.certificate_activity()
    if certs:
        head["certificate activity"] = ", ".join(
            f"{k}={v:g}" for k, v in sorted(certs.items())
        )
    parts = [render_kv(head, title="telemetry report")]

    if report.spans:
        rows = [
            {
                "span": name,
                "count": stats.count,
                "total (s)": round(stats.wall_s, 3),
                "mean (s)": round(stats.wall_s / stats.count, 4),
                "max (s)": round(stats.max_s, 4),
            }
            for name, stats in sorted(
                report.spans.items(), key=lambda kv: -kv[1].wall_s
            )
        ]
        parts.append(render_table(rows, title="spans"))

    if report.histograms:
        rows = []
        for name in sorted(report.histograms):
            s = report.histograms[name].summary()
            if not s.get("count"):
                continue
            rows.append(
                {
                    "histogram": name,
                    "count": s["count"],
                    "mean": round(s["mean"], 5),
                    "p50": round(s["p50"], 5),
                    "p95": round(s["p95"], 5),
                    "p99": round(s["p99"], 5),
                    "max": round(s["max"], 5),
                }
            )
        if rows:
            parts.append(render_table(rows, title="histograms (bucket quantiles)"))

    phases = report.engine_phases()
    if phases:
        rows = [
            {"engine": engine, "phase": phase, "seconds": round(seconds, 4)}
            for engine in sorted(phases)
            for phase, seconds in sorted(
                phases[engine].items(), key=lambda kv: -kv[1]
            )
        ]
        parts.append(render_table(rows, title="engine phase profile"))

    if report.counters:
        parts.append(
            render_kv(
                {k: round(v, 6) for k, v in sorted(report.counters.items())},
                title="counters",
            )
        )

    walls = report.task_wall_times()
    if walls:
        ranked = sorted(walls.items(), key=lambda kv: -kv[1])[:top]
        rows = [{"task": name, "wall (s)": round(w, 3)} for name, w in ranked]
        parts.append(render_table(rows, title=f"slowest campaign tasks (top {top})"))

    if report.invalid:
        lines = [
            f"  event {i}: {err}" for i, err in report.invalid[:20]
        ]
        if len(report.invalid) > 20:
            lines.append(f"  ... ({len(report.invalid) - 20} more)")
        parts.append("schema violations:\n" + "\n".join(lines))
    return "\n\n".join(parts)
