"""Text and Graphviz-DOT rendering of networks, CDGs and witnesses.

No plotting dependencies: everything renders to strings -- DOT for
``graphviz``/``xdot`` consumption, plain text for terminals and test
assertions.

Public API
----------
:func:`network_to_dot`   -- the interconnection network as a DOT digraph.
:func:`cdg_to_dot`       -- the channel dependency graph, cycle edges
                            highlighted.
:func:`witness_timeline` -- a space-time text diagram of a deadlock witness.
:func:`occupancy_snapshot` -- which message holds which channel, from a
                            simulator or a checker state.
"""

from repro.viz.dot import network_to_dot, cdg_to_dot
from repro.viz.timeline import witness_timeline, occupancy_snapshot
from repro.viz.chart import ascii_chart, bar_chart

__all__ = [
    "network_to_dot",
    "cdg_to_dot",
    "witness_timeline",
    "occupancy_snapshot",
    "ascii_chart",
    "bar_chart",
]
