"""Graphviz-DOT exporters."""

from __future__ import annotations

from collections.abc import Iterable, Sequence

import networkx as nx

from repro.topology.channels import Channel
from repro.topology.network import Network


def _quote(x: object) -> str:
    return '"' + str(x).replace('"', r"\"") + '"'


def network_to_dot(
    net: Network,
    *,
    highlight: Iterable[Channel] = (),
    name: str | None = None,
) -> str:
    """Render the network as a DOT digraph.

    ``highlight`` channels (e.g. a dependency cycle's ring) are drawn bold
    red.  Parallel channels keep separate edges, labelled with their VC.
    """
    hot = {c.cid for c in highlight}
    lines = [f"digraph {_quote(name or net.name)} {{", "  rankdir=LR;"]
    for node in net.nodes:
        lines.append(f"  {_quote(node)};")
    for ch in net.channels:
        attrs = []
        if ch.label:
            attrs.append(f"label={_quote(ch.label)}")
        elif ch.vc:
            attrs.append(f"label={_quote(f'vc{ch.vc}')}")
        if ch.cid in hot:
            attrs.append('color="red"')
            attrs.append("penwidth=2.0")
        attr_s = f" [{', '.join(attrs)}]" if attrs else ""
        lines.append(f"  {_quote(ch.src)} -> {_quote(ch.dst)}{attr_s};")
    lines.append("}")
    return "\n".join(lines)


def cdg_to_dot(
    cdg: nx.DiGraph,
    *,
    cycle: Sequence[Channel] = (),
    name: str = "cdg",
) -> str:
    """Render a channel dependency graph as DOT (vertices are channels).

    Edges belonging to ``cycle`` (consecutive channels, wrapping) are drawn
    bold red -- the visual counterpart of the paper's Figure 1 highlight.
    """
    cyc = list(cycle)
    cyc_edges = {
        (cyc[i].cid, cyc[(i + 1) % len(cyc)].cid) for i in range(len(cyc))
    } if cyc else set()
    lines = [f"digraph {_quote(name)} {{", "  rankdir=LR;", '  node [shape=box];']
    for ch in cdg.nodes:
        attrs = []
        if any(ch.cid == a or ch.cid == b for a, b in cyc_edges):
            attrs.append('color="red"')
        attr_s = f" [{', '.join(attrs)}]" if attrs else ""
        lines.append(f"  {_quote(ch.short())}{attr_s};")
    for a, b in cdg.edges:
        attrs = []
        if (a.cid, b.cid) in cyc_edges:
            attrs.append('color="red"')
            attrs.append("penwidth=2.0")
        attr_s = f" [{', '.join(attrs)}]" if attrs else ""
        lines.append(f"  {_quote(a.short())} -> {_quote(b.short())}{attr_s};")
    lines.append("}")
    return "\n".join(lines)
