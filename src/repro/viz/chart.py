"""Terminal-friendly ASCII charts (no plotting dependencies)."""

from __future__ import annotations

from collections.abc import Mapping, Sequence


def ascii_chart(
    points: Sequence[tuple[float, float]],
    *,
    width: int = 56,
    height: int = 12,
    x_label: str = "x",
    y_label: str = "y",
    marker: str = "*",
) -> str:
    """Scatter/line plot of (x, y) points as monospace text.

    Intended for experiment output (latency vs load, delay vs m) where a
    shape at a glance beats a table.  Values are min-max scaled; degenerate
    ranges render on a single row/column.
    """
    if not points:
        return "(no data)"
    xs = [p[0] for p in points]
    ys = [p[1] for p in points]
    x0, x1 = min(xs), max(xs)
    y0, y1 = min(ys), max(ys)
    xr = (x1 - x0) or 1.0
    yr = (y1 - y0) or 1.0
    grid = [[" "] * width for _ in range(height)]
    for x, y in points:
        col = int((x - x0) / xr * (width - 1))
        row = height - 1 - int((y - y0) / yr * (height - 1))
        grid[row][col] = marker
    lines = [f"{y_label} ({y0:g} .. {y1:g})"]
    for row in grid:
        lines.append("|" + "".join(row))
    lines.append("+" + "-" * width)
    lines.append(f" {x_label}: {x0:g} .. {x1:g}")
    return "\n".join(lines)


def bar_chart(
    values: Mapping[str, float], *, width: int = 40, fill: str = "#"
) -> str:
    """Horizontal bar chart for labelled quantities (e.g. utilization)."""
    if not values:
        return "(no data)"
    peak = max(values.values()) or 1.0
    label_w = max(len(str(k)) for k in values)
    lines = []
    for k, v in values.items():
        bar = fill * max(0, int(v / peak * width))
        lines.append(f"{str(k).ljust(label_w)} |{bar} {v:g}")
    return "\n".join(lines)
