"""Space-time text diagrams of deadlock formation."""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.analysis.reachability import Witness

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import Simulator


_ACTION_GLYPH = {
    "wait": ".",
    "try": "I",
    "adv": ">",
    "stall": "S",
    "freeze": "#",
    "lose": "x",
    "drain": "d",
    "done": " ",
}


def witness_timeline(witness: Witness) -> str:
    """One row per message, one column per cycle; glyphs per action.

    ``I`` inject, ``>`` advance, ``S`` stall (budget spent), ``#`` frozen
    (blocked), ``x`` lost arbitration, ``d`` draining, ``.`` waiting to
    inject.  The rightmost column is the deadlock state.
    """
    tags = [m.tag or f"msg{i}" for i, m in enumerate(witness.spec.messages)]
    width = max(len(t) for t in tags)
    header = " " * (width + 2) + "".join(
        f"{t % 10}" for t in range(witness.num_cycles)
    )
    lines = [header]
    for i, tag in enumerate(tags):
        row = "".join(
            _ACTION_GLYPH.get(actions[i], "?") for actions in witness.steps
        )
        marker = "*" if i in witness.deadlocked else " "
        lines.append(f"{tag.ljust(width)} {marker}{row}")
    lines.append(
        "legend: I inject  > advance  S stall  # frozen  x lost-arb  "
        "d drain  . waiting   (* = on the deadlock cycle)"
    )
    return "\n".join(lines)


def occupancy_snapshot(sim: "Simulator", *, only_owned: bool = True) -> str:
    """Which message owns which channel right now, one line per channel."""
    lines = [f"cycle {sim.cycle}:"]
    for ch in sim.network.channels:
        q = sim.queue_of(ch)
        if q.owner is None and only_owned:
            continue
        owner = "-" if q.owner is None else sim.messages[q.owner].spec.display()
        flits = len(q.queue)
        lines.append(f"  {ch.short():<20} owner={owner:<8} flits={flits}")
    if len(lines) == 1:
        lines.append("  (all channels free)")
    return "\n".join(lines)
