"""Verification-campaign orchestration: fan sweeps out, cache verdicts, keep books.

Every paper artifact is reproduced by an exhaustive state-space search or a
traffic simulation.  A *campaign* is a batch of such unit verifications
described declaratively, executed in parallel, memoised on disk, and
recorded in an append-only ledger:

:mod:`tasks`      -- :class:`CampaignTask`, the frozen content-addressed unit
                     of work, and :func:`execute_task`, its interpreter.
:mod:`scenarios`  -- the registry mapping scenario names to constructions
                     (Figure 1--3 families, Theorem 2/3 sweeps, ``Gen(m)``,
                     baseline topologies, traffic workloads).
:mod:`runner`     -- :func:`run_campaign`, a ``ProcessPoolExecutor`` pool
                     with per-task timeout, bounded retry, and a serial
                     in-process fallback.
:mod:`cache`      -- the :class:`CacheBackend` protocol and its backends:
                     :class:`ResultCache` (JSON files keyed by task hash +
                     schema salt), :class:`MemoryLRUCache` (serve hot
                     tier), :class:`SqliteCache` (shareable across
                     processes/CI runners), :class:`TieredCache`, all
                     with hit/miss/stale accounting + integrity scans.
:mod:`ledger`     -- :class:`RunLedger` (JSONL) + :class:`CampaignSummary`.
:mod:`progress`   -- periodic done/total/rate/ETA reporting.
:mod:`specs`      -- built-in campaign specs (``paper-battery``, ``quick``).
:mod:`adapters`   -- experiment-shaped front-ends used by the CLI sweeps.
:mod:`trend`      -- per-task wall-time regression detection across ledgers.

See ``docs/CAMPAIGN.md`` for the task model, cache keying, and ledger
schema.
"""

from repro.campaign.tasks import (
    CampaignTask,
    TaskResult,
    execute_task,
    parse_shard,
    shard_tasks,
    SCHEMA_VERSION,
)
from repro.campaign.cache import (
    CacheBackend,
    CacheIntegrity,
    CacheStats,
    MemoryLRUCache,
    ResultCache,
    SqliteCache,
    TieredCache,
    make_backend,
    schema_salt,
)
from repro.campaign.ledger import CampaignSummary, RunLedger, read_ledger
from repro.campaign.runner import RunnerConfig, run_campaign
from repro.campaign.progress import ProgressReporter
from repro.campaign.specs import build_spec, spec_names
from repro.campaign.trend import TrendReport, compare_ledgers

__all__ = [
    "CampaignTask",
    "TaskResult",
    "execute_task",
    "parse_shard",
    "shard_tasks",
    "SCHEMA_VERSION",
    "TrendReport",
    "compare_ledgers",
    "CacheBackend",
    "CacheIntegrity",
    "CacheStats",
    "MemoryLRUCache",
    "ResultCache",
    "SqliteCache",
    "TieredCache",
    "make_backend",
    "schema_salt",
    "RunLedger",
    "CampaignSummary",
    "read_ledger",
    "RunnerConfig",
    "run_campaign",
    "ProgressReporter",
    "build_spec",
    "spec_names",
]
