"""Append-only JSONL run ledger + campaign summary.

Every task outcome -- cache hit or live, success or failure -- becomes one
``{"type": "result", ...}`` line the moment it is known (flushed, so a
killed campaign leaves a readable partial ledger).  A finished campaign
appends one ``{"type": "summary", ...}`` line.  Ledgers accumulate across
runs of the same spec; ``read_ledger`` returns everything for trending.

Result line fields: ``task_hash``, ``name``, ``kind``, ``scenario``,
``params``, ``verdict``, ``detail`` (states explored etc.), ``ok``,
``error``, ``wall_time``, ``worker``, ``source`` ("cache"/"live"),
``attempts``, ``expect``.
"""

from __future__ import annotations

import json
import time
from collections import Counter
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, TextIO

from repro.campaign.cache import CacheStats
from repro.campaign.tasks import TaskResult


@dataclass
class CampaignSummary:
    """Aggregate view of one campaign run."""

    spec: str = ""
    total: int = 0
    ok: int = 0
    failed: int = 0
    from_cache: int = 0
    live: int = 0
    verdicts: Counter = field(default_factory=Counter)
    expect_mismatches: list[str] = field(default_factory=list)
    wall_time: float = 0.0
    workers: int = 1
    cache: CacheStats | None = None

    def add(self, result: TaskResult) -> None:
        self.total += 1
        if result.ok:
            self.ok += 1
        else:
            self.failed += 1
        if result.source == "cache":
            self.from_cache += 1
        else:
            self.live += 1
        self.verdicts[result.verdict] += 1
        if result.expect_matches is False:
            self.expect_mismatches.append(
                f"{result.name}: expected {result.expect}, got {result.verdict}"
            )

    @property
    def all_expected(self) -> bool:
        return not self.expect_mismatches and self.failed == 0

    def to_json(self) -> dict[str, Any]:
        return {
            "spec": self.spec,
            "total": self.total,
            "ok": self.ok,
            "failed": self.failed,
            "from_cache": self.from_cache,
            "live": self.live,
            "verdicts": dict(self.verdicts),
            "expect_mismatches": list(self.expect_mismatches),
            "wall_time": round(self.wall_time, 3),
            "workers": self.workers,
            "cache": self.cache.to_json() if self.cache else None,
        }

    def rows(self) -> dict[str, Any]:
        """Key/value rows for ``repro.experiments.report.render_kv``."""
        out: dict[str, Any] = {
            "spec": self.spec,
            "tasks": self.total,
            "ok": self.ok,
            "failed": self.failed,
            "cache hits": self.from_cache,
            "live runs": self.live,
            "workers": self.workers,
            "wall time (s)": round(self.wall_time, 2),
        }
        for verdict, n in sorted(self.verdicts.items()):
            out[f"verdict[{verdict}]"] = n
        out["matches expectations"] = self.all_expected
        return out


class RunLedger:
    """Append-only JSONL writer; one instance per campaign run."""

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._fh: TextIO = open(self.path, "a", encoding="utf-8")

    def _write(self, obj: dict[str, Any]) -> None:
        self._fh.write(json.dumps(obj, sort_keys=True) + "\n")
        self._fh.flush()

    def record(self, result: TaskResult) -> None:
        line = {"type": "result", "time": time.time()}
        line.update(result.to_json())
        self._write(line)

    def record_summary(self, summary: CampaignSummary) -> None:
        line = {"type": "summary", "time": time.time()}
        line.update(summary.to_json())
        self._write(line)

    def close(self) -> None:
        if not self._fh.closed:
            self._fh.close()

    def __enter__(self) -> "RunLedger":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()


def read_ledger(path: str | Path) -> tuple[list[TaskResult], list[dict[str, Any]]]:
    """All (results, summary dicts) recorded in a ledger file.

    Unparseable lines are skipped: an append-only log truncated by a crash
    must still be readable up to the damage.
    """
    results: list[TaskResult] = []
    summaries: list[dict[str, Any]] = []
    path = Path(path)
    if not path.exists():
        return results, summaries
    with open(path, encoding="utf-8") as fh:
        for raw in fh:
            raw = raw.strip()
            if not raw:
                continue
            try:
                line = json.loads(raw)
            except ValueError:
                continue
            if line.get("type") == "summary":
                summaries.append(line)
            elif line.get("type") == "result":
                results.append(TaskResult.from_json(line))
    return results, summaries
