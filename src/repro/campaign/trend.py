"""Per-task wall-time trending between two campaign run ledgers.

A campaign ledger accumulates one ``result`` line per task execution, so
two ledgers (or one ledger before/after an optimisation) give a paired
sample of per-task wall times keyed by content hash.  ``compare_ledgers``
joins them on ``task_hash``, taking the *latest successful* execution of
each task on either side, and flags tasks whose wall time grew by more
than ``threshold``x -- the guard the CI benchmark-smoke job and
``python -m repro campaign trend`` build on.

Tiny tasks are pure scheduling noise, so a task only counts as a
regression when its new wall time also exceeds ``min_seconds``.
Improvements beyond the same ratio are reported (but never fail a run).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro.campaign.ledger import read_ledger
from repro.campaign.tasks import TaskResult


@dataclass
class TrendLine:
    """One task present in both ledgers."""

    task_hash: str
    name: str
    old_wall: float
    new_wall: float

    @property
    def ratio(self) -> float:
        """new/old wall-time ratio; infinity when the old time was ~zero."""
        if self.old_wall <= 0:
            return float("inf") if self.new_wall > 0 else 1.0
        return self.new_wall / self.old_wall

    def row(self) -> dict[str, Any]:
        ratio = self.ratio
        return {
            "task": self.name,
            "old (s)": round(self.old_wall, 3),
            "new (s)": round(self.new_wall, 3),
            "ratio": "inf" if ratio == float("inf") else round(ratio, 2),
        }


@dataclass
class TrendReport:
    """Join of two ledgers' latest per-task wall times."""

    old_path: str
    new_path: str
    threshold: float
    min_seconds: float
    compared: list[TrendLine] = field(default_factory=list)
    regressions: list[TrendLine] = field(default_factory=list)
    improvements: list[TrendLine] = field(default_factory=list)
    only_old: int = 0
    only_new: int = 0

    @property
    def ok(self) -> bool:
        return not self.regressions

    def summary_rows(self) -> dict[str, Any]:
        return {
            "old ledger": self.old_path,
            "new ledger": self.new_path,
            "tasks compared": len(self.compared),
            "only in old": self.only_old,
            "only in new": self.only_new,
            "threshold": f"{self.threshold:g}x (min {self.min_seconds:g}s)",
            "regressions": len(self.regressions),
            "improvements": len(self.improvements),
        }


def latest_by_task(results: list[TaskResult]) -> dict[str, TaskResult]:
    """Last successful execution per task hash (ledger lines are appended
    in time order, so iteration order is already oldest-to-newest)."""
    latest: dict[str, TaskResult] = {}
    for res in results:
        if res.ok:
            latest[res.task_hash] = res
    return latest


def compare_ledgers(
    old_path: str | Path,
    new_path: str | Path,
    *,
    threshold: float = 1.5,
    min_seconds: float = 0.05,
) -> TrendReport:
    """Diff per-task wall times of ``new_path`` against ``old_path``."""
    if threshold <= 1.0:
        raise ValueError("threshold must be > 1 (a ratio of new to old wall time)")
    old = latest_by_task(read_ledger(old_path)[0])
    new = latest_by_task(read_ledger(new_path)[0])

    report = TrendReport(
        old_path=str(old_path),
        new_path=str(new_path),
        threshold=threshold,
        min_seconds=min_seconds,
        only_old=len(old.keys() - new.keys()),
        only_new=len(new.keys() - old.keys()),
    )
    for task_hash in sorted(old.keys() & new.keys()):
        o, n = old[task_hash], new[task_hash]
        line = TrendLine(
            task_hash=task_hash,
            name=n.name or o.name,
            old_wall=o.wall_time,
            new_wall=n.wall_time,
        )
        report.compared.append(line)
        if line.new_wall >= min_seconds and line.ratio > threshold:
            report.regressions.append(line)
        elif line.old_wall >= min_seconds and line.ratio < 1.0 / threshold:
            report.improvements.append(line)
    report.regressions.sort(key=lambda ln: ln.ratio, reverse=True)
    report.improvements.sort(key=lambda ln: ln.ratio)
    return report
