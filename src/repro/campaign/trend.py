"""Per-task wall-time and work trending between two campaign run ledgers.

A campaign ledger accumulates one ``result`` line per task execution, so
two ledgers (or one ledger before/after an optimisation) give a paired
sample of per-task wall times keyed by content hash.  ``compare_ledgers``
joins them on ``task_hash``, taking the *latest successful* execution of
each task on either side, and flags tasks whose wall time grew by more
than ``threshold``x -- the guard the CI benchmark-smoke job and
``python -m repro campaign trend`` build on.

Tiny tasks are pure scheduling noise, so a task only counts as a
regression when its new wall time also exceeds ``min_seconds``.
Improvements beyond the same ratio are reported (but never fail a run).

Alongside wall time, the join also diffs ``states_explored`` (the search
work recorded in each result's ``detail``): state counts are exactly
reproducible, so a task whose search suddenly explores more states is an
*algorithmic* regression -- visible even when wall-clock noise hides it,
and immune to the ``min_seconds`` noise floor.  Any growth in states
beyond ``states_threshold`` fails the trend.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro.campaign.ledger import read_ledger
from repro.campaign.tasks import TaskResult


def _states_of(res: TaskResult) -> int | None:
    """The task's recorded search work, when its kind produces any."""
    states = res.detail.get("states_explored")
    if isinstance(states, int) and not isinstance(states, bool):
        return states
    return None


@dataclass
class TrendLine:
    """One task present in both ledgers."""

    task_hash: str
    name: str
    old_wall: float
    new_wall: float
    old_states: int | None = None
    new_states: int | None = None

    @property
    def ratio(self) -> float:
        """new/old wall-time ratio; infinity when the old time was ~zero."""
        if self.old_wall <= 0:
            return float("inf") if self.new_wall > 0 else 1.0
        return self.new_wall / self.old_wall

    @property
    def states_ratio(self) -> float | None:
        """new/old states-explored ratio; ``None`` when either side has no
        state count (non-search kinds, pre-telemetry ledgers)."""
        if self.old_states is None or self.new_states is None:
            return None
        if self.old_states <= 0:
            return float("inf") if self.new_states > 0 else 1.0
        return self.new_states / self.old_states

    def row(self) -> dict[str, Any]:
        ratio = self.ratio
        out = {
            "task": self.name,
            "old (s)": round(self.old_wall, 3),
            "new (s)": round(self.new_wall, 3),
            "ratio": "inf" if ratio == float("inf") else round(ratio, 2),
        }
        sratio = self.states_ratio
        if sratio is not None:
            out["old states"] = self.old_states
            out["new states"] = self.new_states
            out["states ratio"] = "inf" if sratio == float("inf") else round(sratio, 2)
        return out


@dataclass
class TrendReport:
    """Join of two ledgers' latest per-task wall times and state counts."""

    old_path: str
    new_path: str
    threshold: float
    min_seconds: float
    states_threshold: float = 1.0
    compared: list[TrendLine] = field(default_factory=list)
    regressions: list[TrendLine] = field(default_factory=list)
    improvements: list[TrendLine] = field(default_factory=list)
    #: tasks whose search explored more states than before (exact counts,
    #: so no noise floor applies)
    states_regressions: list[TrendLine] = field(default_factory=list)
    only_old: int = 0
    only_new: int = 0

    @property
    def ok(self) -> bool:
        return not self.regressions and not self.states_regressions

    def summary_rows(self) -> dict[str, Any]:
        return {
            "old ledger": self.old_path,
            "new ledger": self.new_path,
            "tasks compared": len(self.compared),
            "only in old": self.only_old,
            "only in new": self.only_new,
            "threshold": f"{self.threshold:g}x (min {self.min_seconds:g}s)",
            "regressions": len(self.regressions),
            "improvements": len(self.improvements),
            "states regressions": len(self.states_regressions),
        }


def latest_by_task(results: list[TaskResult]) -> dict[str, TaskResult]:
    """Last successful execution per task hash (ledger lines are appended
    in time order, so iteration order is already oldest-to-newest)."""
    latest: dict[str, TaskResult] = {}
    for res in results:
        if res.ok:
            latest[res.task_hash] = res
    return latest


def compare_ledgers(
    old_path: str | Path,
    new_path: str | Path,
    *,
    threshold: float = 1.5,
    min_seconds: float = 0.05,
    states_threshold: float = 1.0,
) -> TrendReport:
    """Diff per-task wall times and state counts of ``new_path`` against
    ``old_path``.

    ``states_threshold`` is the allowed new/old ``states_explored`` ratio;
    the default ``1.0`` means any growth in search work is a regression
    (state counts are deterministic, so there is no noise to tolerate).
    """
    if threshold <= 1.0:
        raise ValueError("threshold must be > 1 (a ratio of new to old wall time)")
    if states_threshold < 1.0:
        raise ValueError("states_threshold must be >= 1 (a ratio of state counts)")
    old = latest_by_task(read_ledger(old_path)[0])
    new = latest_by_task(read_ledger(new_path)[0])

    report = TrendReport(
        old_path=str(old_path),
        new_path=str(new_path),
        threshold=threshold,
        min_seconds=min_seconds,
        states_threshold=states_threshold,
        only_old=len(old.keys() - new.keys()),
        only_new=len(new.keys() - old.keys()),
    )
    for task_hash in sorted(old.keys() & new.keys()):
        o, n = old[task_hash], new[task_hash]
        line = TrendLine(
            task_hash=task_hash,
            name=n.name or o.name,
            old_wall=o.wall_time,
            new_wall=n.wall_time,
            old_states=_states_of(o),
            new_states=_states_of(n),
        )
        report.compared.append(line)
        if line.new_wall >= min_seconds and line.ratio > threshold:
            report.regressions.append(line)
        elif line.old_wall >= min_seconds and line.ratio < 1.0 / threshold:
            report.improvements.append(line)
        sratio = line.states_ratio
        if sratio is not None and sratio > states_threshold:
            report.states_regressions.append(line)
    report.regressions.sort(key=lambda ln: ln.ratio, reverse=True)
    report.improvements.sort(key=lambda ln: ln.ratio)
    report.states_regressions.sort(
        key=lambda ln: ln.states_ratio or 0.0, reverse=True
    )
    return report
