"""Periodic campaign progress reporting: done/total, rate, ETA, cache hits.

Writes single-line updates to a stream (stderr by default) at most once
per ``interval`` seconds, plus a final line when the campaign completes.
Silent when ``enabled=False`` (tests, ``--no-progress``) -- the reporter
is always safe to call.
"""

from __future__ import annotations

import sys
import time
from typing import TextIO

from repro.campaign.tasks import TaskResult


def _fmt_eta(seconds: float) -> str:
    if seconds >= 3600:
        return f"{seconds / 3600:.1f}h"
    if seconds >= 60:
        return f"{seconds / 60:.1f}m"
    return f"{seconds:.0f}s"


class ProgressReporter:
    def __init__(
        self,
        total: int,
        *,
        stream: TextIO | None = None,
        interval: float = 2.0,
        enabled: bool = True,
        label: str = "campaign",
    ) -> None:
        self.total = total
        self.stream = stream if stream is not None else sys.stderr
        self.interval = interval
        self.enabled = enabled
        self.label = label
        self.done = 0
        self.cached = 0
        self.failed = 0
        self._start = time.monotonic()
        self._last_emit = 0.0

    def update(self, result: TaskResult) -> None:
        self.done += 1
        if result.source == "cache":
            self.cached += 1
        if not result.ok:
            self.failed += 1
        now = time.monotonic()
        if self.done == self.total or now - self._last_emit >= self.interval:
            self._emit(now)
            self._last_emit = now

    def _emit(self, now: float) -> None:
        if not self.enabled:
            return
        elapsed = max(now - self._start, 1e-9)
        rate = self.done / elapsed
        remaining = self.total - self.done
        eta = _fmt_eta(remaining / rate) if rate > 0 and remaining else "0s"
        line = (
            f"{self.label}: {self.done}/{self.total} done "
            f"({rate:.1f}/s, eta {eta}, cache {self.cached}"
        )
        if self.failed:
            line += f", failed {self.failed}"
        line += ")"
        print(line, file=self.stream, flush=True)

    def close(self) -> None:
        if self.enabled and self.done != self.total:
            self._emit(time.monotonic())
