"""Scenario registry: campaign task names -> paper constructions.

A scenario builds the *inputs* of an analysis from plain JSON-able
parameters, inside the worker process (constructions are cheap; verdicts
are not).  Each builder returns a :class:`ScenarioBundle` exposing
whichever handles its analysis kinds need:

``messages``        checker messages (reachability / classify / min_delay /
                    cross_check)
``sim``             ``(network, routing, specs)`` for timed simulation
``algorithm``       a routing algorithm for CDG structure checks
``cycle_classify``  ``(algorithm, cycle, pairs)`` for CDG-cycle classification
``adaptive``        ``(adaptive_fn, adaptive_messages)`` for the adaptive
                    exhaustive search
``detail``          extra facts recorded verbatim in the task result
                    (e.g. minimality, Theorem 5 condition verdicts)

Builders must stay importable from worker processes: registration happens
at module import, so only scenarios defined here (not in test modules) are
visible to the pool.  The ``debug-*`` scenarios exist for exercising the
runner's timeout/retry machinery in tests.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from typing import Any, Callable

_REGISTRY: dict[str, Callable[[dict[str, Any]], "ScenarioBundle"]] = {}


@dataclass
class ScenarioBundle:
    messages: list = field(default_factory=list)
    sim: tuple | None = None  # (network, routing, specs)
    algorithm: Any = None
    cycle_classify: tuple | None = None  # (algorithm, cycle, pairs)
    adaptive: tuple | None = None  # (adaptive_fn, adaptive_messages)
    detail: dict[str, Any] = field(default_factory=dict)


def register(name: str):
    def deco(fn: Callable[[dict[str, Any]], ScenarioBundle]):
        _REGISTRY[name] = fn
        return fn

    return deco


def scenario_names() -> tuple[str, ...]:
    return tuple(sorted(_REGISTRY))


def build_scenario(name: str, params: dict[str, Any]) -> ScenarioBundle:
    try:
        fn = _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown scenario {name!r}; registered: {', '.join(scenario_names())}"
        ) from None
    return fn(params)


# ----------------------------------------------------------------------
# paper constructions
# ----------------------------------------------------------------------
@register("fig1")
def _fig1(p: dict[str, Any]) -> ScenarioBundle:
    """The Figure 1 Cyclic Dependency network's four cycle messages.

    ``extra_length`` lengthens every message; ``with_copies`` adds the
    Theorem 1 proof's interposed M2/M4 copies; ``subset`` restricts to the
    named message tags (e.g. ``["M1", "M3"]`` -- an acyclic sub-scenario
    the static certificates decide without search).
    """
    from repro.analysis.state import CheckerMessage
    from repro.core.cyclic_dependency import build_cyclic_dependency_network

    cdn = build_cyclic_dependency_network()
    msgs = cdn.checker_messages()
    subset = p.get("subset")
    if subset:
        wanted = {str(t) for t in subset}
        unknown = wanted - {m.tag for m in msgs}
        if unknown:
            raise ValueError(f"unknown fig1 message tags {sorted(unknown)}")
        msgs = [m for m in msgs if m.tag in wanted]
    extra = int(p.get("extra_length", 0))
    if extra:
        msgs = [CheckerMessage(m.path, m.length + extra, m.tag) for m in msgs]
    if p.get("with_copies"):
        msgs = msgs + [
            CheckerMessage(msgs[1].path, msgs[1].length, "M2copy"),
            CheckerMessage(msgs[3].path, msgs[3].length, "M4copy"),
        ]
    return ScenarioBundle(messages=msgs, algorithm=cdn.algorithm)


@register("fig2-pair")
def _fig2_pair(p: dict[str, Any]) -> ScenarioBundle:
    """One Theorem 4 two-message configuration (approaches d1, d2; hold h)."""
    from repro.core.two_message import build_two_message_config

    cfg = build_two_message_config(
        approach_1=int(p.get("d1", 3)),
        approach_2=int(p.get("d2", 1)),
        hold_1=int(p.get("hold", 3)),
        hold_2=int(p.get("hold", 3)),
    )
    return ScenarioBundle(messages=cfg.checker_messages(), algorithm=cfg.algorithm)


@register("fig3-panel")
def _fig3_panel(p: dict[str, Any]) -> ScenarioBundle:
    """One of the six Figure 3 panels, with its Theorem 5 condition verdict."""
    from repro.core.conditions import TheoremFiveInput, evaluate_conditions
    from repro.core.three_message import FIG3_PANELS, build_three_message_config

    params = FIG3_PANELS[str(p["panel"])]
    construction = build_three_message_config(params)
    report = evaluate_conditions(TheoremFiveInput.from_specs(list(params.specs)))
    return ScenarioBundle(
        messages=construction.checker_messages(),
        algorithm=construction.algorithm,
        detail={
            "conditions_unreachable": report.all_hold,
            "failed_conditions": list(report.failed()),
        },
    )


@register("shared-cycle")
def _shared_cycle(p: dict[str, Any]) -> ScenarioBundle:
    """A single-shared-channel cycle from (approach, hold) vectors.

    With ``conditions=True`` (three messages) the Theorem 5 condition
    verdict is recorded alongside, which is how the Figure 3 random sweep
    measures conditions-vs-search agreement.
    """
    from repro.core.specs import CycleMessageSpec, build_shared_cycle

    approaches = [int(a) for a in p["approaches"]]
    holds = [int(h) for h in p["holds"]]
    specs = [
        CycleMessageSpec(approach_len=a, hold_len=h, label=f"S{i}")
        for i, (a, h) in enumerate(zip(approaches, holds))
    ]
    construction = build_shared_cycle(specs, name="campaign-shared")
    detail: dict[str, Any] = {}
    if p.get("conditions"):
        from repro.core.conditions import TheoremFiveInput, evaluate_conditions

        report = evaluate_conditions(TheoremFiveInput.from_specs(specs))
        detail = {
            "conditions_unreachable": report.all_hold,
            "failed_conditions": list(report.failed()),
        }
    return ScenarioBundle(
        messages=construction.checker_messages(),
        algorithm=construction.algorithm,
        detail=detail,
    )


@register("minimal-config")
def _minimal_config(p: dict[str, Any]) -> ScenarioBundle:
    """Theorem 3 sweep member: shared cycle + minimality certificate."""
    from repro.core.specs import CycleMessageSpec, build_shared_cycle
    from repro.routing.properties import is_minimal

    specs = [
        CycleMessageSpec(approach_len=int(a), hold_len=int(h), label=f"M{i + 1}")
        for i, (a, h) in enumerate(zip(p["approaches"], p["holds"]))
    ]
    construction = build_shared_cycle(specs, name="campaign-minimal")
    minimal = is_minimal(construction.algorithm, construction.message_pairs)
    return ScenarioBundle(
        messages=construction.checker_messages(),
        algorithm=construction.algorithm,
        detail={"minimal": minimal},
    )


@register("theorem2-overlap")
def _theorem2_overlap(p: dict[str, Any]) -> ScenarioBundle:
    """A within-cycle-sharing overlapping-ring configuration (Theorem 2)."""
    from repro.core.within_cycle import OverlapSpec, build_overlapping_ring

    entries = [int(e) for e in p["entries"]]
    run_lens = [int(r) for r in p["run_lens"]]
    approach_lens = p.get("approach_lens")
    overlaps = []
    for i, (e, r) in enumerate(zip(entries, run_lens)):
        kw: dict[str, Any] = {"entry_pos": e, "run_len": r}
        if approach_lens is not None:
            kw["approach_len"] = int(approach_lens[i])
        overlaps.append(OverlapSpec(**kw))
    cfg = build_overlapping_ring(int(p["ring_n"]), overlaps)
    return ScenarioBundle(messages=cfg.checker_messages(), algorithm=cfg.algorithm)


@register("gen")
def _gen(p: dict[str, Any]) -> ScenarioBundle:
    """The Section 6 family ``Gen(m)``."""
    from repro.core.generalized import build_generalized

    construction = build_generalized(int(p["m"]))
    return ScenarioBundle(
        messages=construction.checker_messages(), algorithm=construction.algorithm
    )


# ----------------------------------------------------------------------
# baseline algorithms (Section 5 corollaries) and traffic workloads
# ----------------------------------------------------------------------
def _baseline_algorithm(p: dict[str, Any]):
    from repro.routing import (
        RoutingAlgorithm,
        clockwise_ring,
        dateline_torus,
        dimension_order_mesh,
        ecube_hypercube,
        west_first_mesh,
    )
    from repro.topology import hypercube, mesh, ring, torus

    algorithm = str(p["algorithm"])
    if algorithm == "dor":
        dims = tuple(int(d) for d in p["dims"])
        net = mesh(dims)
        return net, dimension_order_mesh(net, len(dims))
    if algorithm == "west-first":
        dims = tuple(int(d) for d in p["dims"])
        net = mesh(dims)
        return net, west_first_mesh(net)
    if algorithm == "ecube":
        d = int(p["d"])
        net = hypercube(d)
        return net, ecube_hypercube(net, d)
    if algorithm == "dateline":
        dims = tuple(int(d) for d in p["dims"])
        net = torus(dims, vcs=2)
        return net, dateline_torus(net, dims)
    if algorithm == "clockwise":
        n = int(p["n"])
        net = ring(n)
        return net, clockwise_ring(net, n)
    raise ValueError(f"unknown baseline algorithm {algorithm!r}")


@register("baseline-cdg")
def _baseline_cdg(p: dict[str, Any]) -> ScenarioBundle:
    """A classic routing baseline, wrapped for CDG structure checks."""
    from repro.routing import RoutingAlgorithm
    from repro.routing.properties import analyze_properties

    net, fn = _baseline_algorithm(p)
    alg = RoutingAlgorithm(fn)
    detail: dict[str, Any] = {}
    if p.get("properties"):
        props = analyze_properties(alg)
        detail = {
            "coherent": props.coherent,
            "input_channel_independent": props.input_channel_independent,
        }
    return ScenarioBundle(algorithm=alg, detail=detail)


@register("ring-cycle")
def _ring_cycle(p: dict[str, Any]) -> ScenarioBundle:
    """The unrestricted ring's single CDG cycle (Corollary 1/3 positive case)."""
    from repro.cdg import build_cdg, find_cycles
    from repro.routing import RoutingAlgorithm, clockwise_ring
    from repro.topology import ring

    n = int(p["n"])
    net = ring(n)
    alg = RoutingAlgorithm(clockwise_ring(net, n))
    cycles = find_cycles(build_cdg(alg)).cycles
    if len(cycles) != 1:
        raise RuntimeError(f"expected one ring cycle, found {len(cycles)}")
    return ScenarioBundle(algorithm=alg, cycle_classify=(alg, cycles[0], None))


@register("traffic")
def _traffic(p: dict[str, Any]) -> ScenarioBundle:
    """Uniform random traffic on a baseline (topology, algorithm) pair."""
    from repro.routing import RoutingAlgorithm
    from repro.sim.traffic import uniform_random_traffic

    net, fn = _baseline_algorithm(p)
    specs = uniform_random_traffic(
        net,
        rate=float(p.get("rate", 0.05)),
        cycles=int(p.get("cycles", 300)),
        length=int(p.get("length", 4)),
        seed=int(p.get("seed", 11)),
    )
    return ScenarioBundle(sim=(net, fn, specs), algorithm=RoutingAlgorithm(fn))


@register("adaptive-mesh")
def _adaptive_mesh(p: dict[str, Any]) -> ScenarioBundle:
    """Adaptive routing on a 2D mesh (Section 7 / Duato's setting).

    ``routing="escape"`` builds :func:`repro.routing.adaptive.duato_escape_mesh`
    on a two-VC mesh (deadlock-free by CRT008); ``routing="full"`` builds the
    single-VC :class:`~repro.routing.adaptive.FullyAdaptiveMesh` negative
    control.  The message set is the four-corners pattern -- each corner
    sends to the opposite corner -- whose turn cycle is the classic
    fully-adaptive deadlock; ``msgs`` keeps only the first k corners (the
    exhaustive adaptive search is exponential in the message count).
    """
    from repro.analysis.adaptive_state import AdaptiveMessage
    from repro.routing import RoutingAlgorithm
    from repro.routing.adaptive import FullyAdaptiveMesh, duato_escape_mesh
    from repro.topology import mesh

    dims = tuple(int(d) for d in p.get("dims", (2, 2)))
    if len(dims) != 2:
        raise ValueError("adaptive-mesh requires 2D dims")
    mode = str(p.get("routing", "escape"))
    if mode == "escape":
        net = mesh(dims, vcs=2)
        fn = duato_escape_mesh(net, 2)
    elif mode == "full":
        net = mesh(dims)
        fn = FullyAdaptiveMesh(net, 2)
    else:
        raise ValueError(f"unknown adaptive routing {mode!r}; use escape|full")
    x, y = dims[0] - 1, dims[1] - 1
    corners = [(0, 0), (x, 0), (x, y), (0, y)]
    length = int(p.get("length", 2))
    msgs = [
        AdaptiveMessage(c, (x - c[0], y - c[1]), length, tag=f"c{i}")
        for i, c in enumerate(corners)
    ][: int(p.get("msgs", 4))]
    return ScenarioBundle(
        algorithm=RoutingAlgorithm(fn),
        adaptive=(fn, msgs),
        detail={"routing": mode},
    )


# ----------------------------------------------------------------------
# debug scenarios (runner tests: timeout, retry, fallback)
# ----------------------------------------------------------------------
@register("debug-sleep")
def _debug_sleep(p: dict[str, Any]) -> ScenarioBundle:
    """Sleep ``seconds`` then yield a trivial one-message scenario."""
    from repro.analysis.state import CheckerMessage

    time.sleep(float(p.get("seconds", 0.0)))
    return ScenarioBundle(messages=[CheckerMessage(path=(0,), length=1, tag="D")])


@register("debug-flaky")
def _debug_flaky(p: dict[str, Any]) -> ScenarioBundle:
    """Fail the first ``fail_times`` builds, tallied via marker files.

    ``token_dir`` must exist and be writable; each attempt drops one marker
    file, and attempts beyond ``fail_times`` succeed -- a deterministic
    stand-in for transient faults when testing runner retry.
    """
    from repro.analysis.state import CheckerMessage

    token_dir = str(p["token_dir"])
    fail_times = int(p.get("fail_times", 1))
    attempts = len(os.listdir(token_dir))
    if attempts < fail_times:
        with open(os.path.join(token_dir, f"attempt{attempts}"), "w"):
            pass
        raise RuntimeError(f"flaky failure {attempts + 1}/{fail_times}")
    return ScenarioBundle(messages=[CheckerMessage(path=(0,), length=1, tag="F")])
