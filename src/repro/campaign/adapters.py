"""Experiment-shaped front-ends over the campaign runner.

The existing sweep commands (``fig3 --sweep``, ``gen``, ``theorem3``) and
the sweep examples/benchmarks predate the campaign subsystem and return
experiment result objects.  These adapters rebuild those objects from
campaign task results, so callers keep their result types while gaining
parallelism (``--jobs``) and the content-addressed cache (``--cache-dir``).
Task parameters deliberately match the ``paper-battery`` spec's, so a CLI
sweep warms the cache for a later full battery run and vice versa.
"""

from __future__ import annotations

from collections.abc import Sequence
from pathlib import Path

from repro.campaign.cache import ResultCache
from repro.campaign.ledger import CampaignSummary, RunLedger
from repro.campaign.progress import ProgressReporter
from repro.campaign.runner import RunnerConfig, run_campaign
from repro.campaign.specs import fig3_sweep_tasks, gen_tasks, theorem3_tasks
from repro.campaign.tasks import CampaignTask, TaskResult


def run_tasks(
    tasks: Sequence[CampaignTask],
    *,
    jobs: int = 1,
    cache_dir: str | Path | None = None,
    ledger_path: str | Path | None = None,
    progress: bool = False,
    task_timeout: float | None = None,
    retries: int = 1,
    spec_name: str = "",
) -> tuple[list[TaskResult], CampaignSummary]:
    """One-call campaign execution with optional cache/ledger/progress."""
    cache = ResultCache(Path(cache_dir)) if cache_dir else None
    ledger = RunLedger(ledger_path) if ledger_path else None
    reporter = ProgressReporter(len(tasks), enabled=progress)
    try:
        return run_campaign(
            tasks,
            cache=cache,
            ledger=ledger,
            progress=reporter,
            config=RunnerConfig(
                max_workers=jobs, task_timeout=task_timeout, retries=retries
            ),
            spec_name=spec_name,
        )
    finally:
        if ledger is not None:
            ledger.close()


def fig3_sweep_via_campaign(
    samples: int,
    *,
    seed: int = 7,
    jobs: int = 1,
    cache_dir: str | Path | None = None,
    progress: bool = False,
):
    """Conditions-vs-search agreement, computed from campaign results.

    Returns the same :class:`repro.experiments.fig3.SweepAgreement` shape
    as ``run_condition_sweep`` over the identical random draw.
    """
    from repro.experiments.fig3 import SweepAgreement

    tasks = fig3_sweep_tasks(samples, seed=seed)
    results, _ = run_tasks(
        tasks,
        jobs=jobs,
        cache_dir=cache_dir,
        progress=progress,
        spec_name="fig3-sweep",
    )
    agree = 0
    disagreements: list[dict[str, object]] = []
    for res in results:
        if not res.ok:
            raise RuntimeError(f"sweep task failed: {res.name}: {res.error}")
        conds = bool(res.detail["conditions_unreachable"])
        if conds == (res.verdict == "unreachable"):
            agree += 1
        else:
            disagreements.append(
                {
                    "d": tuple(res.params["approaches"]),
                    "hold": tuple(res.params["holds"]),
                    "search": res.verdict,
                    "conds": "unreachable" if conds else "deadlock",
                    "failed": res.detail.get("failed_conditions", []),
                }
            )
    return SweepAgreement(
        total=len(results), agree=agree, disagreements=disagreements
    )


def generalization_via_campaign(
    params: Sequence[int],
    *,
    jobs: int = 1,
    cache_dir: str | Path | None = None,
    max_states: int = 40_000_000,
    progress: bool = False,
):
    """The Δ*(m) profile as a :class:`GeneralizationResult`."""
    from repro.experiments.generalization import GeneralizationResult

    tasks = gen_tasks(tuple(params), max_states=max_states)
    results, _ = run_tasks(
        tasks, jobs=jobs, cache_dir=cache_dir, progress=progress, spec_name="gen"
    )
    profile: dict[int, int | None] = {}
    for task, res in zip(tasks, results):
        if not res.ok:
            raise RuntimeError(f"gen task failed: {res.name}: {res.error}")
        profile[int(task.params_dict()["m"])] = res.detail["min_delay"]
    return GeneralizationResult(profile=profile)


def theorem3_via_campaign(
    *,
    limit: int | None = 40,
    jobs: int = 1,
    cache_dir: str | Path | None = None,
    progress: bool = False,
):
    """The Theorem 3 sweep as a :class:`Theorem3Result`."""
    from repro.core.minimal_search import (
        MinimalSweepRecord,
        MinimalSweepResult,
        fig1_nonminimality_certificate,
    )
    from repro.experiments.theorem3 import Theorem3Result

    tasks = theorem3_tasks(limit=limit)
    results, _ = run_tasks(
        tasks, jobs=jobs, cache_dir=cache_dir, progress=progress, spec_name="theorem3"
    )
    sweep = MinimalSweepResult()
    for res in results:
        if not res.ok:
            raise RuntimeError(f"theorem3 task failed: {res.name}: {res.error}")
        sweep.records.append(
            MinimalSweepRecord(
                params=tuple(
                    zip(res.params["approaches"], res.params["holds"])
                ),
                minimal=bool(res.detail["minimal"]),
                deadlock_reachable=res.verdict == "deadlock",
                states_explored=int(res.detail.get("states_explored", 0)),
            )
        )
    return Theorem3Result(sweep=sweep, fig1_slack=fig1_nonminimality_certificate())
