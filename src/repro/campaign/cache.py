"""Pluggable content-addressed result caches behind one ``CacheBackend`` shape.

Every backend stores the same *entry* -- the schema salt, the task
description (for human inspection; lookups never trust it), and the
serialised :class:`~repro.campaign.tasks.TaskResult` -- keyed by
``task_hash`` (canonical-JSON sha256 of kind/scenario/params).  The salt
``campaign-v<SCHEMA_VERSION>`` invalidates every entry at once when the
schema changes; a salt mismatch counts as *stale* rather than a miss so
re-verification pressure stays visible in the stats.  Corrupt or
unreadable entries are likewise stale, never fatal.  Failed results
(``ok=False``) are not cached: a crashed or timed-out task should
re-run, not replay its failure forever.

Backends (all satisfying the :class:`CacheBackend` protocol):

:class:`ResultCache`
    the original one-JSON-file-per-hash directory store
    (``<root>/<first 2 hash chars>/<task_hash>.json``).  Writes go
    through a unique temp file plus an atomic rename, so a worker killed
    mid-write can never publish a truncated entry.
:class:`MemoryLRUCache`
    a bounded in-process LRU -- the ``repro serve`` hot tier, where a
    repeated query must be answered in microseconds.
:class:`SqliteCache`
    a single-file sqlite store.  sqlite's own locking makes it safe to
    share between concurrent processes (CI runners pointing at one
    network file, campaign shards merging into one cache).
:class:`TieredCache`
    a hot tier over a durable tier: reads promote cold hits, writes go
    to both.

``make_backend("dir:PATH" | "sqlite:PATH" | "memory[:N]" | PATH)`` is the
CLI-facing factory; :meth:`CacheBackend.integrity` is the offline scan
behind ``campaign status --json`` that makes shared-cache drift
(corrupt entries, stale salts) visible across backends.
"""

from __future__ import annotations

import json
import os
import sqlite3
import tempfile
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Protocol, runtime_checkable

from repro.campaign.tasks import SCHEMA_VERSION, CampaignTask, TaskResult

DEFAULT_CACHE_DIR = ".campaign-cache"

#: default entry capacity of the in-memory LRU tier
DEFAULT_LRU_CAPACITY = 4096


def schema_salt() -> str:
    return f"campaign-v{SCHEMA_VERSION}"


@dataclass
class CacheStats:
    hits: int = 0
    misses: int = 0
    stale: int = 0
    writes: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses + self.stale

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    def to_json(self) -> dict[str, int | float]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "stale": self.stale,
            "writes": self.writes,
            "hit_rate": round(self.hit_rate, 4),
        }


@dataclass
class CacheIntegrity:
    """Offline scan of one backend's stored entries.

    ``corrupt`` counts entries that do not parse or lack the required
    fields; ``stale_salt`` counts parseable entries whose schema salt
    differs from the backend's current one.  Both are served as misses
    at lookup time -- the scan exists so shared-cache drift (a CI runner
    on an old schema, a half-written file from a killed worker) is
    *visible* before it turns into silent re-verification pressure.
    """

    backend: str
    salt: str
    entries: int = 0
    corrupt: int = 0
    stale_salt: int = 0

    @property
    def healthy(self) -> bool:
        return self.corrupt == 0 and self.stale_salt == 0

    def to_json(self) -> dict[str, Any]:
        return {
            "backend": self.backend,
            "salt": self.salt,
            "entries": self.entries,
            "corrupt": self.corrupt,
            "stale_salt": self.stale_salt,
            "healthy": self.healthy,
        }


@runtime_checkable
class CacheBackend(Protocol):
    """What the campaign runner and the serve layer require of a cache."""

    salt: str
    stats: CacheStats

    def get(self, task: CampaignTask) -> TaskResult | None: ...

    def put(self, task: CampaignTask, result: TaskResult) -> None: ...

    def integrity(self) -> CacheIntegrity: ...

    def clear(self) -> int: ...

    def __len__(self) -> int: ...


# ----------------------------------------------------------------------
# shared entry codec
# ----------------------------------------------------------------------
class _StaleEntry(Exception):
    """Entry exists but cannot be served (corrupt or wrong-salt)."""


def _encode_entry(salt: str, task: CampaignTask, result: TaskResult) -> dict[str, Any]:
    return {
        "schema": salt,
        "task_hash": task.task_hash,
        "task": task.to_json(),
        "saved_at": time.time(),
        "result": result.to_json(),
    }


def _decode_entry(entry: Any, salt: str, task: CampaignTask) -> TaskResult:
    """Entry dict -> fresh TaskResult; raises :class:`_StaleEntry` otherwise.

    Always builds a new ``TaskResult`` (never hands out a shared mutable
    object), marks it ``source="cache"``, and rehydrates the *current*
    task's advisory expectation.
    """
    if not isinstance(entry, dict):
        raise _StaleEntry("entry is not an object")
    if entry.get("schema") != salt:
        raise _StaleEntry(f"salt {entry.get('schema')!r} != {salt!r}")
    try:
        result = TaskResult.from_json(entry["result"])
    except (TypeError, ValueError, KeyError) as exc:
        raise _StaleEntry(str(exc)) from None
    result.source = "cache"
    result.expect = task.expect
    return result


def _entry_defect(entry_text: str, salt: str) -> str | None:
    """``"corrupt"`` / ``"stale_salt"`` / None, for integrity scans."""
    try:
        entry = json.loads(entry_text)
    except ValueError:
        return "corrupt"
    if not isinstance(entry, dict) or "result" not in entry:
        return "corrupt"
    if entry.get("schema") != salt:
        return "stale_salt"
    try:
        TaskResult.from_json(entry["result"])
    except (TypeError, ValueError, KeyError):
        return "corrupt"
    return None


# ----------------------------------------------------------------------
# directory backend (the original store)
# ----------------------------------------------------------------------
@dataclass
class ResultCache:
    """One JSON file per task hash under ``root`` (see module docstring)."""

    root: Path
    salt: str = field(default_factory=schema_salt)
    stats: CacheStats = field(default_factory=CacheStats)

    def __post_init__(self) -> None:
        self.root = Path(self.root)
        self.root.mkdir(parents=True, exist_ok=True)

    def _path(self, task_hash: str) -> Path:
        return self.root / task_hash[:2] / f"{task_hash}.json"

    def get(self, task: CampaignTask) -> TaskResult | None:
        """Cached result, or None (accounting the miss/stale reason)."""
        path = self._path(task.task_hash)
        if not path.exists():
            self.stats.misses += 1
            return None
        try:
            with open(path, encoding="utf-8") as fh:
                entry = json.load(fh)
            result = _decode_entry(entry, self.salt, task)
        except (OSError, ValueError, _StaleEntry):
            self.stats.stale += 1
            return None
        self.stats.hits += 1
        return result

    def put(self, task: CampaignTask, result: TaskResult) -> None:
        if not result.ok:
            return
        path = self._path(task.task_hash)
        path.parent.mkdir(parents=True, exist_ok=True)
        entry = _encode_entry(self.salt, task, result)
        # Crash-safe publish: a *unique* temp file (two racing workers
        # must never interleave writes into one), fsynced, then atomically
        # renamed -- a killed worker leaves at worst an orphan *.tmp that
        # lookups and __len__ never see, never a truncated .json entry.
        fd, tmp_name = tempfile.mkstemp(
            prefix=f".{task.task_hash[:8]}-", suffix=".tmp", dir=path.parent
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                json.dump(entry, fh, indent=1, sort_keys=True)
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        self.stats.writes += 1

    def integrity(self) -> CacheIntegrity:
        report = CacheIntegrity(backend="dir", salt=self.salt)
        for path in self.root.glob("*/*.json"):
            report.entries += 1
            try:
                text = path.read_text(encoding="utf-8")
            except OSError:
                report.corrupt += 1
                continue
            defect = _entry_defect(text, self.salt)
            if defect == "corrupt":
                report.corrupt += 1
            elif defect == "stale_salt":
                report.stale_salt += 1
        return report

    def __len__(self) -> int:
        return sum(1 for _ in self.root.glob("*/*.json"))

    def clear(self) -> int:
        """Delete every entry; returns how many were removed."""
        removed = 0
        for path in self.root.glob("*/*.json"):
            path.unlink(missing_ok=True)
            removed += 1
        for path in self.root.glob("*/*.tmp"):  # orphans from killed writers
            path.unlink(missing_ok=True)
        for sub in self.root.iterdir():
            if sub.is_dir() and not any(sub.iterdir()):
                sub.rmdir()
        return removed


# ----------------------------------------------------------------------
# in-memory LRU backend (serve hot tier)
# ----------------------------------------------------------------------
class MemoryLRUCache:
    """Bounded, thread-safe, in-process LRU of serialised entries.

    Entries are stored as JSON text and re-parsed on every ``get`` so
    concurrent readers never share one mutable ``TaskResult`` (the
    runner rewrites ``source``/``expect`` on hits).  Eviction is strict
    LRU on lookups and writes; ``evictions`` counts what fell out.
    """

    def __init__(self, capacity: int = DEFAULT_LRU_CAPACITY, *, salt: str | None = None) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.salt = salt or schema_salt()
        self.stats = CacheStats()
        self.evictions = 0
        self._entries: OrderedDict[str, str] = OrderedDict()
        self._lock = threading.RLock()

    def get(self, task: CampaignTask) -> TaskResult | None:
        with self._lock:
            text = self._entries.get(task.task_hash)
            if text is None:
                self.stats.misses += 1
                return None
            self._entries.move_to_end(task.task_hash)
        try:
            result = _decode_entry(json.loads(text), self.salt, task)
        except (ValueError, _StaleEntry):
            with self._lock:
                self.stats.stale += 1
                self._entries.pop(task.task_hash, None)  # self-heal
            return None
        with self._lock:
            self.stats.hits += 1
        return result

    def put(self, task: CampaignTask, result: TaskResult) -> None:
        if not result.ok:
            return
        text = json.dumps(_encode_entry(self.salt, task, result), sort_keys=True)
        with self._lock:
            self._entries[task.task_hash] = text
            self._entries.move_to_end(task.task_hash)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.evictions += 1
            self.stats.writes += 1

    def integrity(self) -> CacheIntegrity:
        report = CacheIntegrity(backend="memory", salt=self.salt)
        with self._lock:
            texts = list(self._entries.values())
        for text in texts:
            report.entries += 1
            defect = _entry_defect(text, self.salt)
            if defect == "corrupt":
                report.corrupt += 1
            elif defect == "stale_salt":
                report.stale_salt += 1
        return report

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def clear(self) -> int:
        with self._lock:
            removed = len(self._entries)
            self._entries.clear()
        return removed


# ----------------------------------------------------------------------
# sqlite backend (shared across processes / CI runners)
# ----------------------------------------------------------------------
class SqliteCache:
    """Single-file sqlite entry store, shareable between processes.

    WAL journaling keeps readers unblocked by writers; every ``put`` is
    one transaction, so a killed process can never publish a torn entry
    (sqlite's journal replays or rolls back).  One connection per
    instance, guarded by an RLock so a serve event loop and its batch
    executor thread can share the instance.
    """

    def __init__(
        self, path: str | Path, *, salt: str | None = None, timeout: float = 30.0
    ) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self.salt = salt or schema_salt()
        self.stats = CacheStats()
        self._lock = threading.RLock()
        self._conn = sqlite3.connect(
            str(self.path), timeout=timeout, check_same_thread=False
        )
        with self._lock, self._conn:
            self._conn.execute("PRAGMA journal_mode=WAL")
            self._conn.execute(
                "CREATE TABLE IF NOT EXISTS entries ("
                " task_hash TEXT PRIMARY KEY,"
                " salt TEXT NOT NULL,"
                " entry TEXT NOT NULL,"
                " saved_at REAL NOT NULL)"
            )

    def get(self, task: CampaignTask) -> TaskResult | None:
        with self._lock:
            row = self._conn.execute(
                "SELECT entry FROM entries WHERE task_hash = ?", (task.task_hash,)
            ).fetchone()
        if row is None:
            self.stats.misses += 1
            return None
        try:
            result = _decode_entry(json.loads(row[0]), self.salt, task)
        except (ValueError, _StaleEntry):
            self.stats.stale += 1
            return None
        self.stats.hits += 1
        return result

    def put(self, task: CampaignTask, result: TaskResult) -> None:
        if not result.ok:
            return
        entry = _encode_entry(self.salt, task, result)
        with self._lock, self._conn:
            self._conn.execute(
                "INSERT OR REPLACE INTO entries (task_hash, salt, entry, saved_at)"
                " VALUES (?, ?, ?, ?)",
                (task.task_hash, self.salt, json.dumps(entry, sort_keys=True),
                 entry["saved_at"]),
            )
        self.stats.writes += 1

    def integrity(self) -> CacheIntegrity:
        report = CacheIntegrity(backend="sqlite", salt=self.salt)
        with self._lock:
            rows = self._conn.execute("SELECT entry FROM entries").fetchall()
        for (text,) in rows:
            report.entries += 1
            defect = _entry_defect(text, self.salt)
            if defect == "corrupt":
                report.corrupt += 1
            elif defect == "stale_salt":
                report.stale_salt += 1
        return report

    def __len__(self) -> int:
        with self._lock:
            (count,) = self._conn.execute("SELECT COUNT(*) FROM entries").fetchone()
        return int(count)

    def clear(self) -> int:
        with self._lock, self._conn:
            removed = len(self)
            self._conn.execute("DELETE FROM entries")
        return removed

    def close(self) -> None:
        with self._lock:
            self._conn.close()


# ----------------------------------------------------------------------
# tiered composition (serve: memory LRU over a durable shared store)
# ----------------------------------------------------------------------
class TieredCache:
    """A fast lossy ``hot`` tier over a durable ``cold`` tier.

    ``get`` promotes cold hits into the hot tier; ``put`` writes through
    to both.  ``stats`` accounts at the *tier* level (a hit in either
    tier is one hit), while each member keeps its own per-backend stats
    for the serve status endpoint.
    """

    def __init__(self, hot: CacheBackend, cold: CacheBackend) -> None:
        if hot.salt != cold.salt:
            raise ValueError(
                f"tier salt mismatch: hot={hot.salt!r} cold={cold.salt!r}"
            )
        self.hot = hot
        self.cold = cold
        self.salt = cold.salt
        self.stats = CacheStats()

    def get(self, task: CampaignTask) -> TaskResult | None:
        result = self.hot.get(task)
        if result is None:
            result = self.cold.get(task)
            if result is not None:
                self.hot.put(task, result)
        if result is None:
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        return result

    def put(self, task: CampaignTask, result: TaskResult) -> None:
        if not result.ok:
            return
        self.hot.put(task, result)
        self.cold.put(task, result)
        self.stats.writes += 1

    def integrity(self) -> CacheIntegrity:
        """The durable tier's scan (the hot tier is derived data)."""
        return self.cold.integrity()

    def __len__(self) -> int:
        return len(self.cold)

    def clear(self) -> int:
        """Entries dropped across both tiers (hot holds duplicates)."""
        return self.hot.clear() + self.cold.clear()


# ----------------------------------------------------------------------
# factory
# ----------------------------------------------------------------------
def make_backend(
    spec: str | None,
    *,
    default_dir: str = DEFAULT_CACHE_DIR,
    salt: str | None = None,
) -> CacheBackend:
    """Build a backend from a CLI spec string.

    ``dir:PATH`` (or a bare path) -> :class:`ResultCache`;
    ``sqlite:PATH`` -> :class:`SqliteCache`;
    ``memory`` / ``memory:N`` -> :class:`MemoryLRUCache` holding N entries.
    ``None``/empty falls back to the directory store at ``default_dir``.
    """
    spec = spec or default_dir
    scheme, _, rest = spec.partition(":")
    if scheme == "sqlite":
        if not rest:
            raise ValueError("sqlite backend needs a path: sqlite:PATH")
        return SqliteCache(rest, salt=salt)
    if scheme == "memory":
        try:
            capacity = int(rest) if rest else DEFAULT_LRU_CAPACITY
        except ValueError:
            raise ValueError(
                f"memory backend capacity must be an integer, got {rest!r}"
            ) from None
        return MemoryLRUCache(capacity, salt=salt)
    if scheme == "dir":
        if not rest:
            raise ValueError("dir backend needs a path: dir:PATH")
        return ResultCache(Path(rest), salt=salt or schema_salt())
    return ResultCache(Path(spec), salt=salt or schema_salt())
