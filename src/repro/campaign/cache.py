"""Content-addressed result cache: one JSON file per task hash.

Layout: ``<root>/<first 2 hash chars>/<task_hash>.json`` containing the
schema salt, the task description (for human inspection -- lookups never
trust it), and the serialised :class:`~repro.campaign.tasks.TaskResult`.

Keying is ``task_hash`` (canonical-JSON sha256 of kind/scenario/params)
plus the salt ``campaign-v<SCHEMA_VERSION>``: bumping ``SCHEMA_VERSION``
invalidates every entry at once, and a salt mismatch counts as *stale*
rather than a miss so re-verification pressure is visible in the stats.
Corrupt or unreadable entries are likewise stale, never fatal.

Failed results (``ok=False``) are not cached: a crashed or timed-out task
should re-run, not replay its failure forever.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from pathlib import Path

from repro.campaign.tasks import SCHEMA_VERSION, CampaignTask, TaskResult

DEFAULT_CACHE_DIR = ".campaign-cache"


def schema_salt() -> str:
    return f"campaign-v{SCHEMA_VERSION}"


@dataclass
class CacheStats:
    hits: int = 0
    misses: int = 0
    stale: int = 0
    writes: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses + self.stale

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    def to_json(self) -> dict[str, int | float]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "stale": self.stale,
            "writes": self.writes,
            "hit_rate": round(self.hit_rate, 4),
        }


@dataclass
class ResultCache:
    root: Path
    salt: str = field(default_factory=schema_salt)
    stats: CacheStats = field(default_factory=CacheStats)

    def __post_init__(self) -> None:
        self.root = Path(self.root)
        self.root.mkdir(parents=True, exist_ok=True)

    def _path(self, task_hash: str) -> Path:
        return self.root / task_hash[:2] / f"{task_hash}.json"

    def get(self, task: CampaignTask) -> TaskResult | None:
        """Cached result, or None (accounting the miss/stale reason)."""
        path = self._path(task.task_hash)
        if not path.exists():
            self.stats.misses += 1
            return None
        try:
            with open(path, encoding="utf-8") as fh:
                entry = json.load(fh)
            if entry.get("schema") != self.salt:
                self.stats.stale += 1
                return None
            result = TaskResult.from_json(entry["result"])
        except (OSError, ValueError, KeyError):
            self.stats.stale += 1
            return None
        self.stats.hits += 1
        result.source = "cache"
        # expectations are advisory metadata: honour the *current* task's
        result.expect = task.expect
        return result

    def put(self, task: CampaignTask, result: TaskResult) -> None:
        if not result.ok:
            return
        path = self._path(task.task_hash)
        path.parent.mkdir(parents=True, exist_ok=True)
        entry = {
            "schema": self.salt,
            "task_hash": task.task_hash,
            "task": task.to_json(),
            "saved_at": time.time(),
            "result": result.to_json(),
        }
        tmp = path.with_suffix(".tmp")
        with open(tmp, "w", encoding="utf-8") as fh:
            json.dump(entry, fh, indent=1, sort_keys=True)
        tmp.replace(path)  # atomic publish: readers never see half a file
        self.stats.writes += 1

    def __len__(self) -> int:
        return sum(1 for _ in self.root.glob("*/*.json"))

    def clear(self) -> int:
        """Delete every entry; returns how many were removed."""
        removed = 0
        for path in self.root.glob("*/*.json"):
            path.unlink(missing_ok=True)
            removed += 1
        for sub in self.root.iterdir():
            if sub.is_dir() and not any(sub.iterdir()):
                sub.rmdir()
        return removed
