"""Built-in campaign specs: named generators of task batches.

``paper-battery`` is the whole reproduction: Figure 1 / Theorem 1 (with
the proof's length and copy augmentations), the Figure 2 / Theorem 4 grid,
the six Figure 3 / Theorem 5 panels plus the random condition sweep, the
Theorem 2 overlap family, the Theorem 3 minimality sweep, the Section 6
``Gen(m)`` delay grid, the Section 5 corollary baselines -- CDG
structure, ring-cycle classification, and validation traffic -- across
mesh/ring/hypercube/torus sizes, a static-linter cross-section whose
expectations pin which scenarios the certificates decide (and, just as
deliberately, which they must leave undecided), the Section 7 adaptive
checker cases (Duato escape vs fully adaptive), and the witness-replay
cross-checks.  Each task carries the paper's stated
verdict as ``expect`` where the paper states one, so a campaign run is
itself a reproduction check: the summary counts expectation mismatches.

``quick`` is a cheap cross-section (one task per subsystem) for smoke
tests and CI.

Specs are functions so new ones can be registered by callers (tests do);
``build_spec(name, limit=...)`` is the single entry point.
"""

from __future__ import annotations

import itertools
import random
from collections.abc import Callable

from repro.campaign.tasks import CampaignTask

_SPECS: dict[str, Callable[[], list[CampaignTask]]] = {}


def register_spec(name: str):
    def deco(fn: Callable[[], list[CampaignTask]]):
        _SPECS[name] = fn
        return fn

    return deco


def spec_names() -> tuple[str, ...]:
    return tuple(sorted(_SPECS))


def build_spec(name: str, *, limit: int | None = None) -> list[CampaignTask]:
    try:
        fn = _SPECS[name]
    except KeyError:
        raise KeyError(
            f"unknown campaign spec {name!r}; available: {', '.join(spec_names())}"
        ) from None
    tasks = fn()
    if limit is not None:
        tasks = tasks[:limit]
    return tasks


# ----------------------------------------------------------------------
# shared builders (also used by the CLI sweep adapters)
# ----------------------------------------------------------------------
def fig2_grid_tasks(
    approach_range=(1, 2, 3, 4), hold_range=(2, 3, 4)
) -> list[CampaignTask]:
    """The Theorem 4 universality grid: every pair configuration deadlocks."""
    return [
        CampaignTask.make(
            "reachability", "fig2-pair", d1=d1, d2=d2, hold=h, expect="deadlock"
        )
        for d1, d2 in itertools.product(approach_range, repeat=2)
        for h in hold_range
    ]


def fig3_panel_tasks() -> list[CampaignTask]:
    from repro.core.three_message import FIG3_PANELS

    return [
        CampaignTask.make(
            "classify",
            "fig3-panel",
            panel=panel,
            max_states=4_000_000,
            expect="unreachable" if params.expected_unreachable else "deadlock",
        )
        for panel, params in FIG3_PANELS.items()
    ]


def fig3_sweep_tasks(samples: int = 20, *, seed: int = 7) -> list[CampaignTask]:
    """Random Theorem 5 configurations (same draw as ``run_condition_sweep``).

    No ``expect``: the point is measuring conditions-vs-search agreement,
    which the adapter computes from each task's ``conditions_unreachable``
    detail against its search verdict.
    """
    rng = random.Random(seed)
    tasks: list[CampaignTask] = []
    seen: set[tuple] = set()
    while len(tasks) < samples:
        ds = rng.sample(range(1, 6), 3)
        hs = [rng.randint(1, 6) for _ in range(3)]
        key = (tuple(ds), tuple(hs))
        if key in seen:
            continue
        seen.add(key)
        tasks.append(
            CampaignTask.make(
                "classify",
                "shared-cycle",
                approaches=tuple(ds),
                holds=tuple(hs),
                conditions=True,
                max_states=2_000_000,
            )
        )
    return tasks


def theorem2_tasks() -> list[CampaignTask]:
    """The four overlapping-ring families of ``run_theorem2_experiment``."""
    configs = [
        {"ring_n": 8, "entries": (0, 4), "run_lens": (5, 5)},
        {"ring_n": 6, "entries": (0, 2, 4), "run_lens": (3, 3, 3)},
        {"ring_n": 10, "entries": (0, 5), "run_lens": (7, 7)},
        {
            "ring_n": 9,
            "entries": (0, 3, 7),
            "run_lens": (4, 5, 3),
            "approach_lens": (2, 1, 3),
        },
    ]
    return [
        CampaignTask.make("reachability", "theorem2-overlap", expect="deadlock", **cfg)
        for cfg in configs
    ]


def theorem3_tasks(
    *,
    num_messages: int = 3,
    approach_range=(1, 2, 3),
    hold_range=(1, 2, 3),
    limit: int | None = 40,
) -> list[CampaignTask]:
    """Theorem 3 sweep members; degenerate geometries are filtered here.

    No per-task ``expect`` -- the theorem constrains the *conjunction*
    (minimal AND unreachable must never occur), checked by the adapter
    from each result's ``minimal`` detail and verdict.
    """
    from repro.core.specs import CycleMessageSpec, build_shared_cycle

    tasks: list[CampaignTask] = []
    combos = itertools.product(
        itertools.product(approach_range, hold_range), repeat=num_messages
    )
    for count, params in enumerate(combos):
        if limit is not None and count >= limit:
            break
        specs = [
            CycleMessageSpec(approach_len=a, hold_len=h, label=f"M{i + 1}")
            for i, (a, h) in enumerate(params)
        ]
        try:
            build_shared_cycle(specs, name=f"spec-probe{count}")
        except ValueError:
            continue  # invalid oblivious geometry, same skip as the sweep
        tasks.append(
            CampaignTask.make(
                "reachability",
                "minimal-config",
                approaches=tuple(a for a, _ in params),
                holds=tuple(h for _, h in params),
                max_states=1_000_000,
            )
        )
    return tasks


def gen_tasks(params=(1, 2, 3), *, max_states: int = 40_000_000) -> list[CampaignTask]:
    """The Section 6 grid: measured Δ*(m) = m."""
    return [
        CampaignTask.make(
            "min_delay",
            "gen",
            m=m,
            max_delay=m + 3,
            max_states=max_states,
            expect=f"delta={m}",
        )
        for m in params
    ]


def baseline_tasks() -> list[CampaignTask]:
    """Section 5 corollary baselines across mesh/ring/hypercube/torus sizes."""
    tasks: list[CampaignTask] = [
        # unrestricted rings: cyclic CDG whose one cycle must be a real deadlock
        CampaignTask.make("classify", "ring-cycle", n=n, expect="deadlock")
        for n in (4, 5, 6)
    ]
    cdg_cases = [
        {"algorithm": "dor", "dims": (3, 3)},
        {"algorithm": "dor", "dims": (4, 4)},
        {"algorithm": "west-first", "dims": (4, 4)},
        {"algorithm": "ecube", "d": 3},
        {"algorithm": "ecube", "d": 4},
        {"algorithm": "dateline", "dims": (4, 4)},
    ]
    tasks += [
        CampaignTask.make("cdg", "baseline-cdg", expect="acyclic", **case)
        for case in cdg_cases
    ]
    return tasks


def lint_tasks() -> list[CampaignTask]:
    """Static-linter cross-section: one task per interesting verdict class.

    ``expect`` is the *static* verdict: certificate-decided scenarios must
    stay decided (``deadlock_free`` / ``reachable_deadlock``), and the
    paper's star cases -- Figure 1 and the Theorem 5 panels, whose whole
    point is that statics are not enough -- must stay ``undecided``.
    """
    return [
        # Dally-Seitz certificates (Corollary baselines)
        CampaignTask.make(
            "lint", "baseline-cdg", algorithm="dor", dims=(3, 3),
            expect="deadlock_free",
        ),
        CampaignTask.make(
            "lint", "baseline-cdg", algorithm="dateline", dims=(4, 4),
            expect="deadlock_free",
        ),
        CampaignTask.make(
            "lint", "baseline-cdg", algorithm="ecube", d=3, expect="deadlock_free"
        ),
        # reachable-deadlock certificates (Theorems 2 and 4)
        CampaignTask.make("lint", "ring-cycle", n=4, expect="reachable_deadlock"),
        CampaignTask.make(
            "lint", "fig2-pair", d1=3, d2=1, hold=3, expect="reachable_deadlock"
        ),
        CampaignTask.make(
            "lint",
            "theorem2-overlap",
            ring_n=6,
            entries=(0, 2, 4),
            run_lens=(3, 3, 3),
            expect="reachable_deadlock",
        ),
        # adaptive routing: Duato's escape condition decides the escape
        # mesh (CRT008); the fully-adaptive mesh must stay undecided
        CampaignTask.make(
            "lint", "adaptive-mesh", routing="escape", dims=(3, 3),
            expect="deadlock_free",
        ),
        CampaignTask.make(
            "lint", "adaptive-mesh", routing="full", dims=(3, 3),
            expect="undecided",
        ),
        # statics must NOT decide these (unreachable cycles / delay-gated)
        CampaignTask.make("lint", "fig1", expect="undecided"),
        CampaignTask.make("lint", "fig3-panel", panel="a", expect="undecided"),
        CampaignTask.make("lint", "gen", m=2, expect="undecided"),
    ]


def adaptive_tasks() -> list[CampaignTask]:
    """Section 7 adaptive checker cross-section (Duato's setting).

    The escape meshes are certificate-decided (CRT008) under ``on`` mode
    and exhaustively confirmed under ``check``; the fully-adaptive mesh is
    the negative control -- four corner messages reach the classic turn
    cycle, while two cannot close a knot.
    """
    return [
        CampaignTask.make(
            "adaptive", "adaptive-mesh", routing="escape", dims=(2, 2), msgs=2,
            expect="unreachable",
        ),
        CampaignTask.make(
            "adaptive", "adaptive-mesh", routing="escape", dims=(3, 3), msgs=2,
            expect="unreachable",
        ),
        CampaignTask.make(
            "adaptive", "adaptive-mesh", routing="full", dims=(2, 2), msgs=4,
            expect="deadlock",
        ),
        CampaignTask.make(
            "adaptive", "adaptive-mesh", routing="full", dims=(2, 2), msgs=2,
            expect="unreachable",
        ),
    ]


def cross_check_tasks() -> list[CampaignTask]:
    """Witness-replay cross-validation of the certificate fast path.

    One task per witness source: the Theorem-2 overlap ring is decided by
    CRT005 and must emit a *constructed* zero-search witness; the Theorem-4
    pair and the delayed Figure 1 exercise search-produced witnesses.  All
    three replay through the flit-level simulator (``replay-failed`` /
    ``witness-invalid`` verdicts would break the ``expect``).
    """
    return [
        CampaignTask.make(
            "cross_check",
            "theorem2-overlap",
            ring_n=6,
            entries=(0, 2, 4),
            run_lens=(3, 3, 3),
            expect="deadlock",
        ),
        CampaignTask.make(
            "cross_check", "fig2-pair", d1=3, d2=1, hold=3, expect="deadlock"
        ),
        CampaignTask.make(
            "cross_check", "fig1", budget=1, max_states=8_000_000,
            expect="deadlock",
        ),
    ]


def traffic_tasks() -> list[CampaignTask]:
    """Simulator-validation workloads (V1) plus the ring positive control."""
    tasks: list[CampaignTask] = []
    for rate in (0.02, 0.06):
        for case in [
            {"algorithm": "dor", "dims": (4, 4)},
            {"algorithm": "dor", "dims": (8, 8)},
            {"algorithm": "west-first", "dims": (8, 8)},
            {"algorithm": "dateline", "dims": (4, 4)},
            {"algorithm": "ecube", "d": 3},
        ]:
            tasks.append(
                CampaignTask.make(
                    "simulate", "traffic", rate=rate, expect="delivered", **case
                )
            )
    tasks.append(
        CampaignTask.make(
            "simulate",
            "traffic",
            algorithm="clockwise",
            n=8,
            rate=0.08,
            cycles=400,
            length=10,
            seed=3,
            expect="deadlock",
        )
    )
    return tasks


# ----------------------------------------------------------------------
# named specs
# ----------------------------------------------------------------------
@register_spec("paper-battery")
def paper_battery() -> list[CampaignTask]:
    tasks: list[CampaignTask] = [
        # Figure 1 / Theorem 1: no reachable deadlock at Δ = 0, robust to
        # longer messages and the proof's interposed copies; Δ = 1 breaks it
        CampaignTask.make("reachability", "fig1", expect="unreachable"),
        CampaignTask.make(
            "reachability", "fig1", extra_length=1, expect="unreachable"
        ),
        CampaignTask.make(
            "reachability", "fig1", extra_length=2, expect="unreachable"
        ),
        CampaignTask.make(
            "reachability",
            "fig1",
            with_copies=True,
            max_states=8_000_000,
            expect="unreachable",
        ),
        CampaignTask.make("min_delay", "fig1", max_delay=3, expect="delta=1"),
        # the M1/M3 sub-scenario has an acyclic dependency graph: the
        # static certificate decides it with zero search states
        CampaignTask.make(
            "reachability", "fig1", subset=("M1", "M3"), expect="unreachable"
        ),
    ]
    tasks += fig2_grid_tasks()
    tasks += fig3_panel_tasks()
    tasks += fig3_sweep_tasks(20)
    tasks += theorem2_tasks()
    tasks += theorem3_tasks()
    tasks += gen_tasks((1, 2, 3))
    tasks += baseline_tasks()
    tasks += lint_tasks()
    tasks += adaptive_tasks()
    tasks += cross_check_tasks()
    tasks += traffic_tasks()
    return tasks


@register_spec("quick")
def quick() -> list[CampaignTask]:
    """One cheap task per subsystem -- CI smoke and cache demos."""
    return [
        CampaignTask.make("reachability", "fig1", expect="unreachable"),
        CampaignTask.make(
            "reachability", "fig2-pair", d1=3, d2=1, hold=3, expect="deadlock"
        ),
        CampaignTask.make(
            "classify", "fig3-panel", panel="a", max_states=2_000_000,
            expect="unreachable",
        ),
        CampaignTask.make(
            "min_delay", "gen", m=1, max_delay=3, expect="delta=1"
        ),
        CampaignTask.make(
            "reachability",
            "theorem2-overlap",
            ring_n=6,
            entries=(0, 2, 4),
            run_lens=(3, 3, 3),
            expect="deadlock",
        ),
        CampaignTask.make("classify", "ring-cycle", n=4, expect="deadlock"),
        CampaignTask.make("cdg", "baseline-cdg", algorithm="dor", dims=(3, 3),
                          expect="acyclic"),
        CampaignTask.make("lint", "ring-cycle", n=4, expect="reachable_deadlock"),
        CampaignTask.make(
            "adaptive", "adaptive-mesh", routing="escape", dims=(2, 2), msgs=2,
            expect="unreachable",
        ),
        CampaignTask.make(
            "cross_check", "fig2-pair", d1=3, d2=1, hold=3, expect="deadlock"
        ),
        CampaignTask.make(
            "simulate", "traffic", algorithm="dor", dims=(4, 4), rate=0.02,
            expect="delivered",
        ),
    ]
