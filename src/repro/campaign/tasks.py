"""The campaign task model: frozen, hashable, content-addressed work units.

A :class:`CampaignTask` names *what* to verify -- a registered scenario
(construction) plus parameters -- and *how* -- the analysis kind:

``reachability``
    exhaustive deadlock search (:func:`repro.analysis.search_deadlock`);
``classify``
    full-adversary classification, either of a fixed message set
    (:func:`repro.analysis.classify.classify_configuration`) or of a CDG
    cycle (:func:`repro.analysis.classify.classify_cycle`), per scenario;
``min_delay``
    the Section 6 stall-budget sweep
    (:func:`repro.analysis.delay.min_delay_to_deadlock`);
``simulate``
    a timed flit-level run (:class:`repro.sim.engine.Simulator`);
``cdg``
    channel-dependency-graph structure checks (acyclicity + Dally--Seitz
    numbering) for the corollary baselines;
``lint``
    the static deadlock linter (:func:`repro.lint.lint_algorithm` /
    :func:`repro.lint.lint_messages`): rule diagnostics plus at most one
    search-free certificate verdict;
``adaptive``
    exhaustive adaptive-routing search
    (:func:`repro.analysis.adaptive_state.search_adaptive_deadlock`) over
    the scenario's ``adaptive`` handle, with the CRT008/CRT001 certificate
    pre-pass;
``cross_check``
    certificate/witness cross-validation: run the reachability search with
    ``find_witness=True``, then validate the emitted witness against the
    successor relation and replay it through the flit-level simulator --
    any disagreement surfaces as a non-``deadlock`` verdict.

Identity is the sha256 of the canonical JSON of ``(kind, scenario,
params)`` -- stable across process restarts, dict orderings, and Python
versions -- which keys both the result cache and the run ledger.  The
``expect`` field is advisory (the paper's stated verdict) and deliberately
excluded from identity and equality.

``execute_task`` is module-level and operates on plain picklable data so
the parallel runner can ship tasks to worker processes.
"""

from __future__ import annotations

import hashlib
import json
import time
from dataclasses import dataclass, field
from typing import Any

#: bump when the result payload or task semantics change; salts the cache key
#: (v5: new ``adaptive`` and ``cross_check`` kinds; certificate-decided
#: reachable verdicts now construct witnesses without search, so
#: witness-bearing results can report ``states_explored`` of 0;
#: v4: optional per-task ``telemetry`` summary embedded in results when
#: ``REPRO_TELEMETRY`` is on; v3: static-certificate pre-pass --
#: certificate-decided reachability and classify tasks report
#: ``states_explored``/``scenarios_tested`` of 0 and a ``certificate``
#: detail; new ``lint`` kind)
SCHEMA_VERSION = 5

ANALYSIS_KINDS = (
    "reachability",
    "classify",
    "min_delay",
    "simulate",
    "cdg",
    "lint",
    "adaptive",
    "cross_check",
)

Params = tuple[tuple[str, Any], ...]


def _canonical_value(v: Any) -> Any:
    """Normalise a parameter value to a hashable, JSON-stable form."""
    if isinstance(v, bool) or v is None or isinstance(v, (int, str)):
        return v
    if isinstance(v, float):
        return v
    if isinstance(v, (list, tuple)):
        return tuple(_canonical_value(x) for x in v)
    raise TypeError(f"unsupported campaign parameter type {type(v).__name__}: {v!r}")


def _jsonable(v: Any) -> Any:
    """Tuples -> lists, recursively, for canonical JSON."""
    if isinstance(v, tuple):
        return [_jsonable(x) for x in v]
    return v


@dataclass(frozen=True)
class CampaignTask:
    """One unit of verification work; identity = content hash."""

    kind: str
    scenario: str
    params: Params = ()
    #: paper-stated verdict, e.g. ``"unreachable"`` / ``"deadlock"`` --
    #: advisory metadata, excluded from identity (compare/hash)
    expect: str | None = field(default=None, compare=False)

    def __post_init__(self) -> None:
        if self.kind not in ANALYSIS_KINDS:
            raise ValueError(
                f"unknown analysis kind {self.kind!r}; expected one of {ANALYSIS_KINDS}"
            )
        # normalise params: sorted by key, canonical hashable values
        norm = tuple(
            sorted((str(k), _canonical_value(v)) for k, v in self.params)
        )
        keys = [k for k, _ in norm]
        if len(set(keys)) != len(keys):
            raise ValueError(f"duplicate parameter keys in {keys}")
        object.__setattr__(self, "params", norm)

    @classmethod
    def make(
        cls, kind: str, scenario: str, *, expect: str | None = None, **params: Any
    ) -> "CampaignTask":
        """Build a task from keyword parameters (any ordering)."""
        return cls(
            kind=kind, scenario=scenario, params=tuple(params.items()), expect=expect
        )

    # ------------------------------------------------------------------
    # identity
    # ------------------------------------------------------------------
    def canonical_json(self) -> str:
        """Canonical JSON of the identity-bearing fields."""
        payload = {
            "kind": self.kind,
            "scenario": self.scenario,
            "params": {k: _jsonable(v) for k, v in self.params},
        }
        return json.dumps(payload, sort_keys=True, separators=(",", ":"))

    @property
    def task_hash(self) -> str:
        return hashlib.sha256(self.canonical_json().encode("utf-8")).hexdigest()

    @property
    def name(self) -> str:
        """Human-readable label for ledgers and progress lines."""
        ps = ",".join(f"{k}={v}" for k, v in self.params)
        return f"{self.scenario}({ps}):{self.kind}"

    def params_dict(self) -> dict[str, Any]:
        return dict(self.params)

    # ------------------------------------------------------------------
    # serialisation
    # ------------------------------------------------------------------
    def to_json(self) -> dict[str, Any]:
        return {
            "kind": self.kind,
            "scenario": self.scenario,
            "params": {k: _jsonable(v) for k, v in self.params},
            "expect": self.expect,
        }

    @classmethod
    def from_json(cls, data: dict[str, Any]) -> "CampaignTask":
        return cls(
            kind=data["kind"],
            scenario=data["scenario"],
            params=tuple(data.get("params", {}).items()),
            expect=data.get("expect"),
        )


def parse_shard(text: str) -> tuple[int, int]:
    """Parse an ``"i/n"`` shard selector (1-based index ``i`` of ``n``).

    Malformed selectors are rejected loudly with a message naming the
    specific defect -- a silently-empty shard (e.g. from ``0/4`` under
    0-based assumptions, or ``5/4`` from a typo) would skip work without
    anyone noticing until the merged campaign came up short.
    """
    parts = text.split("/")
    if len(parts) != 2:
        raise ValueError(f"shard must look like 'i/n', got {text!r}")
    try:
        index, count = int(parts[0]), int(parts[1])
    except ValueError:
        raise ValueError(
            f"shard must be two integers 'i/n', got {text!r}"
        ) from None
    if count < 1:
        raise ValueError(
            f"shard count must be a positive integer, got {count} in {text!r}"
        )
    if index < 1:
        raise ValueError(
            f"shard index is 1-based: got {index} in {text!r}"
            f" (the first shard is '1/{count}', not '0/{count}')"
        )
    if index > count:
        raise ValueError(
            f"shard index {index} exceeds shard count {count} in {text!r}"
        )
    return index, count


def shard_tasks(
    tasks: list["CampaignTask"], index: int, count: int
) -> list["CampaignTask"]:
    """Deterministic hash-range shard ``index`` (1-based) of ``count``.

    Selection is ``task_hash mod count``, so it depends only on task
    content: every task lands in exactly one shard, re-ordering or
    trimming the spec never moves a task between shards, and the shards'
    ledgers/caches union to exactly the unsharded campaign (merge them by
    pointing ``campaign status`` / the result cache at a shared
    ``--cache-dir``).
    """
    return [t for t in tasks if int(t.task_hash, 16) % count == index - 1]


@dataclass
class TaskResult:
    """Outcome of one task, in ledger/cache-ready form."""

    task_hash: str
    name: str
    kind: str
    scenario: str
    params: dict[str, Any]
    verdict: str
    detail: dict[str, Any] = field(default_factory=dict)
    ok: bool = True
    error: str | None = None
    wall_time: float = 0.0
    worker: str = ""
    source: str = "live"  # "live" | "cache"
    attempts: int = 1
    expect: str | None = None
    #: per-task telemetry summary (counter/span deltas accumulated while
    #: the task ran); ``None`` unless ``REPRO_TELEMETRY`` was on
    telemetry: dict[str, Any] | None = None

    @property
    def expect_matches(self) -> bool | None:
        """None when no expectation was declared."""
        if self.expect is None:
            return None
        return self.verdict == self.expect

    def to_json(self) -> dict[str, Any]:
        return {
            "task_hash": self.task_hash,
            "name": self.name,
            "kind": self.kind,
            "scenario": self.scenario,
            "params": {k: _jsonable(v) for k, v in self.params.items()},
            "verdict": self.verdict,
            "detail": {k: _jsonable(v) for k, v in self.detail.items()},
            "ok": self.ok,
            "error": self.error,
            "wall_time": self.wall_time,
            "worker": self.worker,
            "source": self.source,
            "attempts": self.attempts,
            "expect": self.expect,
            "telemetry": self.telemetry,
        }

    @classmethod
    def from_json(cls, data: dict[str, Any]) -> "TaskResult":
        return cls(
            task_hash=data["task_hash"],
            name=data.get("name", ""),
            kind=data.get("kind", ""),
            scenario=data.get("scenario", ""),
            params=data.get("params", {}),
            verdict=data.get("verdict", ""),
            detail=data.get("detail", {}),
            ok=data.get("ok", True),
            error=data.get("error"),
            wall_time=data.get("wall_time", 0.0),
            worker=data.get("worker", ""),
            source=data.get("source", "live"),
            attempts=data.get("attempts", 1),
            expect=data.get("expect"),
            telemetry=data.get("telemetry"),
        )


# ----------------------------------------------------------------------
# execution (module-level: must be importable/picklable from workers)
# ----------------------------------------------------------------------
def _run_reachability(
    bundle, p: dict[str, Any], search_jobs: int = 1, engine: str | None = None
) -> tuple[str, dict[str, Any]]:
    from repro.analysis import SystemSpec, search_deadlock

    spec = SystemSpec.uniform(bundle.messages, budget=int(p.get("budget", 0)))
    res = search_deadlock(
        spec,
        max_states=int(p.get("max_states", 4_000_000)),
        find_witness=False,
        jobs=search_jobs,
        engine=engine,
    )
    verdict = "deadlock" if res.deadlock_reachable else "unreachable"
    return verdict, {
        "states_explored": res.states_explored,
        "certificate": res.certificate,
    }


def _run_classify(
    bundle, p: dict[str, Any], search_jobs: int = 1, engine: str | None = None
) -> tuple[str, dict[str, Any]]:
    from repro.analysis.classify import classify_configuration, classify_cycle

    if bundle.cycle_classify is not None:
        alg, cycle, pairs = bundle.cycle_classify
        cls = classify_cycle(
            alg,
            cycle,
            pairs=pairs,
            length_slack=int(p.get("length_slack", 0)),
            extra_copies=int(p.get("extra_copies", 1)),
            budget=int(p.get("budget", 0)),
            max_states=int(p.get("max_states", 2_000_000)),
            search_jobs=search_jobs,
            engine=engine,
        )
        verdict = "deadlock" if cls.deadlock_reachable else "unreachable"
        return verdict, {
            "tilings_tested": cls.tilings_tested,
            "scenarios_tested": cls.scenarios_tested,
            "certificate": cls.certificate,
        }
    reachable, res = classify_configuration(
        bundle.messages,
        budget=int(p.get("budget", 0)),
        copy_depth=int(p.get("copy_depth", 1)),
        length_slack=int(p.get("length_slack", 0)),
        max_states=int(p.get("max_states", 4_000_000)),
        search_jobs=search_jobs,
        engine=engine,
    )
    verdict = "deadlock" if reachable else "unreachable"
    return verdict, {"states_explored": res.states_explored}


def _run_min_delay(
    bundle, p: dict[str, Any], search_jobs: int = 1, engine: str | None = None
) -> tuple[str, dict[str, Any]]:
    from repro.analysis.delay import min_delay_to_deadlock

    res = min_delay_to_deadlock(
        bundle.messages,
        max_delay=int(p.get("max_delay", 8)),
        max_states=int(p.get("max_states", 8_000_000)),
        search_jobs=search_jobs,
        engine=engine,
    )
    states = sum(r.states_explored for r in res.results.values())
    if res.min_delay is None:
        return "no-deadlock", {
            "min_delay": None,
            "max_delay_tested": res.max_delay_tested,
            "states_explored": states,
        }
    return f"delta={res.min_delay}", {
        "min_delay": res.min_delay,
        "states_explored": states,
    }


def _run_simulate(
    bundle, p: dict[str, Any], search_jobs: int = 1, engine: str | None = None
) -> tuple[str, dict[str, Any]]:
    from repro.sim import SimConfig, Simulator

    net, routing, specs = bundle.sim
    cfg = SimConfig(max_cycles=int(p.get("max_cycles", 60_000)))
    sim = Simulator(net, routing, specs, config=cfg)
    res = sim.run()
    if res.deadlocked:
        verdict = "deadlock"
    elif res.timed_out:
        verdict = "timeout"
    else:
        verdict = "delivered"
    return verdict, {
        "delivered": res.delivered,
        "total": res.total,
        "cycles": res.cycles,
        "mean_latency": round(res.stats.mean_latency(), 2),
        "throughput": round(res.stats.throughput_flits_per_cycle(), 3),
    }


def _run_cdg(
    bundle, p: dict[str, Any], search_jobs: int = 1, engine: str | None = None
) -> tuple[str, dict[str, Any]]:
    from repro.cdg import build_cdg, dally_seitz_numbering, is_acyclic, verify_numbering

    alg = bundle.algorithm
    cdg = build_cdg(alg)
    acyclic = is_acyclic(cdg)
    detail: dict[str, Any] = {"acyclic": acyclic}
    if acyclic:
        numbering = dally_seitz_numbering(cdg)
        detail["numbering_valid"] = verify_numbering(cdg, numbering)
        return "acyclic", detail
    return "cyclic", detail


def _run_lint(
    bundle, p: dict[str, Any], search_jobs: int = 1, engine: str | None = None
) -> tuple[str, dict[str, Any]]:
    from repro.lint import lint_algorithm, lint_messages

    if bundle.algorithm is not None:
        report = lint_algorithm(
            bundle.algorithm, max_cycles=int(p.get("max_cycles", 10_000))
        )
    elif bundle.messages:
        report = lint_messages(bundle.messages, budget=int(p.get("budget", 0)))
    else:
        raise ValueError("scenario exposes neither an algorithm nor messages to lint")
    cert_diag = report.certificate_diagnostic
    return report.verdict, {
        "certificate": None if cert_diag is None else cert_diag.code,
        "max_severity": report.max_severity,
        "diagnostics": sorted(d.code for d in report.diagnostics),
        "errors": len(report.errors),
        "rules_run": len(report.rules_run),
    }


def _run_adaptive(
    bundle, p: dict[str, Any], search_jobs: int = 1, engine: str | None = None
) -> tuple[str, dict[str, Any]]:
    from repro.analysis.adaptive_state import search_adaptive_deadlock

    if bundle.adaptive is None:
        raise ValueError("scenario exposes no adaptive routing function")
    fn, messages = bundle.adaptive
    res = search_adaptive_deadlock(
        fn,
        messages,
        budget=int(p.get("budget", 0)),
        max_states=int(p.get("max_states", 500_000)),
    )
    verdict = "deadlock" if res.deadlock_reachable else "unreachable"
    return verdict, {
        "states_explored": res.states_explored,
        "certificate": res.certificate,
        "deadlocked_tags": list(res.deadlocked_tags),
    }


def _run_cross_check(
    bundle, p: dict[str, Any], search_jobs: int = 1, engine: str | None = None
) -> tuple[str, dict[str, Any]]:
    """Witness emission + replay cross-validation for one scenario.

    Any layer disagreeing -- the witness failing successor-relation
    validation, or the flit-level replay not deadlocking -- yields a
    distinct verdict (``witness-invalid`` / ``replay-failed``) so the
    battery's ``expect`` comparison flags it.
    """
    from repro.analysis import SystemSpec, search_deadlock
    from repro.lint.witness import replay_certificate_witness, validate_witness

    if not bundle.messages or bundle.algorithm is None:
        raise ValueError("cross_check needs both messages and an algorithm")
    spec = SystemSpec.uniform(bundle.messages, budget=int(p.get("budget", 0)))
    res = search_deadlock(
        spec,
        max_states=int(p.get("max_states", 4_000_000)),
        find_witness=True,
        jobs=search_jobs,
        engine=engine,
    )
    detail: dict[str, Any] = {
        "states_explored": res.states_explored,
        "certificate": res.certificate,
    }
    if not res.deadlock_reachable:
        return "unreachable", detail
    if res.witness is None:
        return "deadlock", detail  # reachable decided without a schedule
    detail["witness_valid"] = validate_witness(res.witness)
    net = bundle.algorithm.network
    chan = {c.cid: c for c in net.channels}
    src_dst = [
        (chan[m.path[0]].src, chan[m.path[-1]].dst)
        for m in res.witness.spec.messages
    ]
    detail["replay_deadlocked"] = replay_certificate_witness(
        res.witness, net, bundle.algorithm.fn, src_dst
    )
    if not detail["witness_valid"]:
        return "witness-invalid", detail
    if not detail["replay_deadlocked"]:
        return "replay-failed", detail
    return "deadlock", detail


_KIND_RUNNERS = {
    "reachability": _run_reachability,
    "classify": _run_classify,
    "min_delay": _run_min_delay,
    "simulate": _run_simulate,
    "cdg": _run_cdg,
    "lint": _run_lint,
    "adaptive": _run_adaptive,
    "cross_check": _run_cross_check,
}


def execute_task(
    task: CampaignTask,
    *,
    worker: str = "",
    search_jobs: int = 1,
    engine: str | None = None,
) -> TaskResult:
    """Build the task's scenario and run its analysis.

    Never raises for task-level failures: the error is captured in the
    result (``ok=False``) so a single bad configuration cannot abort a
    thousand-task campaign.  Infrastructure errors (pool breakage,
    timeouts) are the runner's concern.

    ``search_jobs`` and ``engine`` are *execution* knobs (worker
    processes for frontier-parallel searches, and the search engine --
    fast/vector/kernel/auto/reference -- used inside a task), deliberately not task
    parameters: the engines are pinned bit-identical by the differential
    suites, so neither knob enters the content hash and cached results
    stay valid whatever execution strategy produced them.
    """
    from repro.campaign.scenarios import build_scenario
    from repro.obs import get as _obs_get

    # per-task telemetry summary: registry deltas around the task body.
    # Works identically in-process (deltas against the shared collector)
    # and in pool workers (REPRO_TELEMETRY is inherited via the
    # environment; the worker's sink-less collector just aggregates and
    # the summary rides back inside the picklable result).
    tel = _obs_get()
    mark = tel.mark() if tel is not None else None

    p = task.params_dict()
    t0 = time.perf_counter()
    try:
        bundle = build_scenario(task.scenario, p)
        verdict, detail = _KIND_RUNNERS[task.kind](bundle, p, search_jobs, engine)
        detail.update(bundle.detail)
        result = TaskResult(
            task_hash=task.task_hash,
            name=task.name,
            kind=task.kind,
            scenario=task.scenario,
            params=p,
            verdict=verdict,
            detail=detail,
            ok=True,
            wall_time=time.perf_counter() - t0,
            worker=worker,
            expect=task.expect,
        )
    except Exception as exc:  # noqa: BLE001 - captured into the result
        result = TaskResult(
            task_hash=task.task_hash,
            name=task.name,
            kind=task.kind,
            scenario=task.scenario,
            params=p,
            verdict="error",
            ok=False,
            error=f"{type(exc).__name__}: {exc}",
            wall_time=time.perf_counter() - t0,
            worker=worker,
            expect=task.expect,
        )
    if tel is not None and mark is not None:
        result.telemetry = tel.since(mark)
    return result
