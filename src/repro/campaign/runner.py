"""Parallel campaign execution: process pool, timeout, retry, serial fallback.

Execution model:

* tasks are deduplicated by content hash (first occurrence wins) and
  looked up in the configured :class:`~repro.campaign.cache.CacheBackend` first;
* cache misses run in waves: wave 1 is every miss, wave ``k+1`` is the
  failures of wave ``k``, up to ``retries`` extra attempts with
  exponential backoff between waves (task-level errors are captured into
  results by :func:`~repro.campaign.tasks.execute_task`, so one crashing
  configuration cannot abort the campaign);
* with ``max_workers > 1`` a wave runs on a fresh
  ``concurrent.futures.ProcessPoolExecutor`` -- task payloads cross the
  process boundary as plain JSON dicts and the worker entry point
  :func:`_pool_worker` is module-level, so everything pickles;
* per-task wall-clock ``task_timeout`` bounds how long the collector waits
  on each future (measured from when collection reaches it, so it is a
  lenient upper bound, and only enforceable under the pool -- a serial
  run cannot preempt a task);
* if the pool cannot be created (sandboxes without ``fork``/semaphores) or
  breaks mid-wave, execution degrades to the in-process serial path, which
  produces identical verdicts -- equivalence is pinned by
  ``tests/test_campaign_runner.py``.

Results stream into the ledger/cache/progress reporter the moment they are
known; a killed campaign leaves a readable partial ledger behind.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import TimeoutError as FuturesTimeoutError
from contextlib import nullcontext
from dataclasses import dataclass
from collections.abc import Iterable, Sequence
from typing import ContextManager

from repro.campaign.cache import CacheBackend
from repro.campaign.ledger import CampaignSummary, RunLedger
from repro.campaign.progress import ProgressReporter
from repro.campaign.tasks import CampaignTask, TaskResult, execute_task


@dataclass
class RunnerConfig:
    """Execution knobs for :func:`run_campaign`."""

    max_workers: int = 1
    task_timeout: float | None = None  # seconds; pool mode only
    retries: int = 1  # extra attempts after a failed/timed-out task
    backoff: float = 0.5  # seconds before the first retry wave, then doubled
    #: worker processes for frontier-parallel searches *inside* one task;
    #: execution-only (never part of task identity or the cache key)
    search_jobs: int = 1
    #: search engine (fast/vector/kernel/auto/reference) used inside
    #: tasks; ``None`` defers to ``REPRO_SEARCH_ENGINE``/the default.
    #: Execution-only for the same reason: the engines are pinned
    #: bit-identical.
    engine: str | None = None

    def __post_init__(self) -> None:
        if self.max_workers < 1:
            raise ValueError("max_workers must be >= 1")
        if self.retries < 0:
            raise ValueError("retries must be >= 0")
        if self.task_timeout is not None and self.task_timeout <= 0:
            raise ValueError("task_timeout must be positive")
        if self.search_jobs < 1:
            raise ValueError("search_jobs must be >= 1")
        if self.engine not in (None, "fast", "vector", "kernel", "auto", "reference"):
            raise ValueError(
                f"unknown search engine {self.engine!r}; "
                "use 'fast', 'vector', 'kernel', 'auto' or 'reference'"
            )


def _trace_scope(carrier: str | None) -> ContextManager[None]:
    """A scope adopting ``carrier`` (a traceparent string) as the remote
    trace parent -- a no-op when telemetry is off or the carrier is
    missing/malformed.  Falls back to the ``REPRO_TRACE`` environment
    carrier, which spawned processes inherit from a traced parent."""
    from repro.obs import get as _obs_get
    from repro.obs.trace import extract_env, extract_traceparent

    tel = _obs_get()
    if tel is None:
        return nullcontext()
    ctx = extract_traceparent(carrier) if carrier else extract_env()
    return nullcontext() if ctx is None else tel.activate(ctx)


def _pool_worker(
    payload: dict,
    search_jobs: int = 1,
    engine: str | None = None,
    trace_carrier: str | None = None,
) -> dict:
    """Worker-process entry: JSON in, JSON out (always picklable).

    ``trace_carrier`` joins the task's events to the submitting request's
    trace (the serve batcher passes one per task); without it the
    ``REPRO_TRACE`` environment carrier inherited from a traced parent
    process applies.
    """
    task = CampaignTask.from_json(payload)
    with _trace_scope(trace_carrier):
        return execute_task(
            task, worker=f"pid{os.getpid()}", search_jobs=search_jobs, engine=engine
        ).to_json()


def _infra_failure(task: CampaignTask, error: str) -> TaskResult:
    return TaskResult(
        task_hash=task.task_hash,
        name=task.name,
        kind=task.kind,
        scenario=task.scenario,
        params=task.params_dict(),
        verdict="error",
        ok=False,
        error=error,
        worker="pool",
        expect=task.expect,
    )


class _WaveExecutor:
    """Runs one wave of tasks, degrading from pool to serial when needed."""

    def __init__(self, config: RunnerConfig) -> None:
        self.config = config
        self.serial_forced = config.max_workers <= 1

    def run(
        self,
        tasks: Sequence[CampaignTask],
        traces: dict[str, str] | None = None,
    ) -> list[TaskResult]:
        if not tasks:
            return []
        jobs = self.config.search_jobs
        engine = self.config.engine
        if self.serial_forced:
            return [self._run_serial(t, "serial", traces) for t in tasks]
        return self._run_pool(tasks, traces)

    def _run_serial(
        self,
        task: CampaignTask,
        worker: str,
        traces: dict[str, str] | None,
    ) -> TaskResult:
        with _trace_scope(traces.get(task.task_hash) if traces else None):
            return execute_task(
                task,
                worker=worker,
                search_jobs=self.config.search_jobs,
                engine=self.config.engine,
            )

    def _run_pool(
        self,
        tasks: Sequence[CampaignTask],
        traces: dict[str, str] | None,
    ) -> list[TaskResult]:
        jobs = self.config.search_jobs
        engine = self.config.engine
        try:
            from concurrent.futures import ProcessPoolExecutor

            executor = ProcessPoolExecutor(max_workers=self.config.max_workers)
        except Exception:  # noqa: BLE001 - environment without process support
            self.serial_forced = True
            return [self._run_serial(t, "serial", traces) for t in tasks]

        results: list[TaskResult] = []
        broken = False
        try:
            futures = [
                (
                    executor.submit(
                        _pool_worker,
                        t.to_json(),
                        jobs,
                        engine,
                        traces.get(t.task_hash) if traces else None,
                    ),
                    t,
                )
                for t in tasks
            ]
            for fut, task in futures:
                if broken:
                    results.append(
                        self._run_serial(task, "serial-fallback", traces)
                    )
                    continue
                try:
                    results.append(
                        TaskResult.from_json(
                            fut.result(timeout=self.config.task_timeout)
                        )
                    )
                except FuturesTimeoutError:
                    fut.cancel()
                    results.append(
                        _infra_failure(
                            task, f"timeout after {self.config.task_timeout}s"
                        )
                    )
                except Exception as exc:  # noqa: BLE001 - e.g. BrokenProcessPool
                    broken = True
                    self.serial_forced = True
                    results.append(
                        _infra_failure(task, f"{type(exc).__name__}: {exc}")
                    )
        finally:
            executor.shutdown(wait=False, cancel_futures=True)
        return results


def run_campaign(
    tasks: Iterable[CampaignTask],
    *,
    cache: CacheBackend | None = None,
    ledger: RunLedger | None = None,
    progress: ProgressReporter | None = None,
    config: RunnerConfig | None = None,
    spec_name: str = "",
    traces: dict[str, str] | None = None,
) -> tuple[list[TaskResult], CampaignSummary]:
    """Execute a batch of tasks; returns (results in task order, summary).

    ``traces`` maps ``task_hash`` to the traceparent carrier of the
    request that submitted the task (the serve batcher's batches mix
    requests): each task's events and its ``campaign.task`` span then
    join the submitting trace instead of this campaign's own.
    """
    from repro.obs import get as _obs_get

    tel = _obs_get()
    if tel is None:
        return _run_campaign_impl(
            tasks,
            cache=cache,
            ledger=ledger,
            progress=progress,
            config=config,
            spec_name=spec_name,
            tel=None,
            traces=traces,
        )
    with tel.span("campaign.run", spec=spec_name) as sp:
        results, summary = _run_campaign_impl(
            tasks,
            cache=cache,
            ledger=ledger,
            progress=progress,
            config=config,
            spec_name=spec_name,
            tel=tel,
            traces=traces,
        )
        sp.set(
            tasks=summary.total,
            ok=summary.ok,
            failed=summary.failed,
            from_cache=summary.from_cache,
            workers=summary.workers,
        )
        if summary.cache is not None:
            sp.set(cache_hit_rate=round(summary.cache.hit_rate, 4))
    return results, summary


def _run_campaign_impl(
    tasks: Iterable[CampaignTask],
    *,
    cache: CacheBackend | None,
    ledger: RunLedger | None,
    progress: ProgressReporter | None,
    config: RunnerConfig | None,
    spec_name: str,
    tel,
    traces: dict[str, str] | None = None,
) -> tuple[list[TaskResult], CampaignSummary]:
    config = config or RunnerConfig()
    t0 = time.perf_counter()

    unique: list[CampaignTask] = []
    seen: set[str] = set()
    for task in tasks:
        if task.task_hash not in seen:
            seen.add(task.task_hash)
            unique.append(task)

    summary = CampaignSummary(spec=spec_name, workers=config.max_workers)
    by_hash: dict[str, TaskResult] = {}

    def finalize(task: CampaignTask, result: TaskResult) -> None:
        by_hash[task.task_hash] = result
        summary.add(result)
        if tel is not None:
            from repro.obs.trace import extract_traceparent

            trace_ctx = (
                extract_traceparent(traces.get(task.task_hash))
                if traces
                else None
            )
            # one span per task, emitted by the coordinating process so
            # cache hits, serial runs and pool workers all look alike;
            # the duration is the task's own measured wall time
            tel.point_span(
                "campaign.task",
                result.wall_time,
                trace_ctx=trace_ctx,
                task_hash=result.task_hash,
                name=result.name,
                kind=result.kind,
                scenario=result.scenario,
                verdict=result.verdict,
                ok=result.ok,
                source=result.source,
                states_explored=result.detail.get("states_explored"),
                certificate=result.detail.get("certificate"),
            )
            tel.incr("campaign.tasks")
            tel.observe(
                "campaign.task.wall_s", result.wall_time, kind=result.kind
            )
            if not result.ok:
                tel.incr("campaign.tasks.failed")
            # exactly one cache lookup happens per unique task, so these
            # two counters reproduce CacheStats.hit_rate from events alone
            if cache is not None:
                if result.source == "cache":
                    tel.incr("campaign.cache.hits")
                else:
                    tel.incr("campaign.cache.misses")
        if ledger is not None:
            ledger.record(result)
        if progress is not None:
            progress.update(result)
        if cache is not None and result.source == "live":
            cache.put(task, result)

    wave: list[CampaignTask] = []
    for task in unique:
        hit = cache.get(task) if cache is not None else None
        if hit is not None:
            finalize(task, hit)
        else:
            wave.append(task)

    executor = _WaveExecutor(config)
    for attempt in range(1, config.retries + 2):
        if not wave:
            break
        if attempt > 1:
            time.sleep(config.backoff * (2 ** (attempt - 2)))
        retry_wave: list[CampaignTask] = []
        for task, result in zip(wave, executor.run(wave, traces)):
            result.attempts = attempt
            if not result.ok and attempt <= config.retries:
                retry_wave.append(task)
            else:
                finalize(task, result)
        wave = retry_wave

    summary.wall_time = time.perf_counter() - t0
    if cache is not None:
        summary.cache = cache.stats
    if ledger is not None:
        ledger.record_summary(summary)
    if progress is not None:
        progress.close()
    return [by_hash[t.task_hash] for t in unique], summary
