"""The lint engine: run the rule registry over a target.

Two entry points:

* :func:`lint_algorithm` -- full static analysis of a routing algorithm
  (topology, routing table, Definition 7-9 properties, CDG structure,
  certificates).  This is what ``python -m repro lint`` and the campaign's
  ``lint`` task kind run.
* :func:`lint_messages` -- spec-level analysis of a fixed message set, as
  used by :func:`repro.analysis.reachability.search_deadlock`'s certificate
  pre-pass.

Shared expensive artefacts (the :class:`~repro.routing.properties.PropertyScan`,
the CDG, the capped cycle enumeration, the certificate) live on a
:class:`LintContext` and are computed lazily, at most once, no matter how
many rules consult them.
"""

from __future__ import annotations

from collections.abc import Sequence
from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.routing.adaptive import AdaptiveRoutingFunction

import networkx as nx

from repro.analysis.state import CheckerMessage, SystemSpec
from repro.cdg.analysis import CycleEnumeration, find_cycles, is_acyclic
from repro.cdg.build import build_cdg
from repro.lint.certificates import (
    Certificate,
    algorithm_certificate,
    spec_certificate,
    spec_dependency_graph,
)
from repro.lint.diagnostics import Diagnostic, LintReport
from repro.lint.rules import all_rules
from repro.routing.base import RoutingAlgorithm, RoutingError
from repro.routing.properties import PropertyScan
from repro.topology.channels import NodeId
from repro.topology.network import Network

Pair = tuple[NodeId, NodeId]

_UNSET: Any = object()


class LintContext:
    """Lazy shared state for one :func:`lint_algorithm` run."""

    def __init__(
        self,
        alg: RoutingAlgorithm,
        pairs: Sequence[Pair] | None = None,
        *,
        max_cycles: int = 10_000,
        max_probe_cycles: int = 32,
    ) -> None:
        self.alg = alg
        self.network: Network = alg.network
        self.pairs = list(pairs) if pairs is not None else None
        self.max_cycles = max_cycles
        self.max_probe_cycles = max_probe_cycles
        #: adaptive functions get the full candidate-relation CDG and the
        #: Duato certificate; scan-based rules see their deterministic
        #: projection (first candidate) via ``alg`` as usual
        self.is_adaptive: bool = bool(getattr(alg.fn, "is_adaptive", False))
        self._scan: PropertyScan | None = None
        self._cdg: nx.DiGraph | None = None
        self._cycles: CycleEnumeration | None = None
        self._route_errors: dict[Pair, RoutingError] | None = None
        self._certificate: Certificate | None = _UNSET

    # ------------------------------------------------------------------
    # lazy artefacts
    # ------------------------------------------------------------------
    @property
    def scan(self) -> PropertyScan:
        if self._scan is None:
            self._scan = PropertyScan(self.alg, self.pairs)
        return self._scan

    @property
    def cdg(self) -> nx.DiGraph:
        if self._cdg is None:
            if self.is_adaptive:
                from repro.cdg.adaptive import build_adaptive_cdg

                self._cdg = build_adaptive_cdg(self.alg.fn)
            else:
                self._cdg = build_cdg(self.alg, list(self.scan.domain))
        return self._cdg

    @property
    def cdg_acyclic(self) -> bool:
        return is_acyclic(self.cdg)

    @property
    def cycles(self) -> CycleEnumeration:
        if self._cycles is None:
            self._cycles = find_cycles(self.cdg, max_cycles=self.max_cycles)
        return self._cycles

    def route_errors(self) -> dict[Pair, RoutingError]:
        """Routing failures over the domain, keyed by (source, destination)."""
        if self._route_errors is None:
            errors: dict[Pair, RoutingError] = {}
            for pair in self.scan.domain:
                if self.scan.paths.get(pair) is not None:
                    continue
                try:
                    self.alg.path(*pair)
                except RoutingError as err:
                    errors[pair] = err
            self._route_errors = errors
        return self._route_errors

    def certificate(self) -> Certificate | None:
        """The (at most one) static certificate, computed once.

        A broken routing domain (undefined or structurally invalid routes)
        suppresses certification entirely: the corollary arguments assume
        the checked property holds over the whole intended domain.
        Adaptive functions are certified through
        :func:`repro.lint.certificates.adaptive_certificate` (Duato's
        CRT008 or full-CDG Dally--Seitz) -- the oblivious tiling and
        corollary arguments do not transfer to a router that can abandon
        the scanned path mid-flight.
        """
        if self._certificate is _UNSET:
            if self.is_adaptive:
                from repro.lint.certificates import adaptive_certificate

                self._certificate = adaptive_certificate(self.alg.fn)
            elif any(
                err.kind != "undefined" for err in self.route_errors().values()
            ):
                self._certificate = None
            else:
                self._certificate = algorithm_certificate(
                    self.scan,
                    self.cdg,
                    self.cycles,
                    max_probe_cycles=self.max_probe_cycles,
                )
        return self._certificate


def lint_algorithm(
    alg: RoutingAlgorithm,
    pairs: Sequence[Pair] | None = None,
    *,
    name: str | None = None,
    max_cycles: int = 10_000,
    max_probe_cycles: int = 32,
) -> LintReport:
    """Run every registered rule over a routing algorithm."""
    from repro.obs import get as _obs_get

    ctx = LintContext(
        alg, pairs, max_cycles=max_cycles, max_probe_cycles=max_probe_cycles
    )
    target = name if name is not None else f"{alg.fn.name()} on {alg.network.name}"
    tel = _obs_get()
    if tel is None:
        return _lint_algorithm_impl(ctx, target)
    with tel.span("lint.algorithm", target=target) as sp:
        report = _lint_algorithm_impl(ctx, target)
        cert_diag = report.certificate_diagnostic
        sp.set(
            verdict=report.verdict,
            diagnostics=len(report.diagnostics),
            rules_run=len(report.rules_run),
            certificate=None if cert_diag is None else cert_diag.code,
        )
        tel.incr("lint.runs")
        tel.incr("lint.diagnostics", len(report.diagnostics))
    return report


def _lint_algorithm_impl(ctx: LintContext, target: str) -> LintReport:
    report = LintReport(target=target)
    certified = False
    for rule in all_rules():
        if rule.certificate and certified:
            # certificates are mutually exclusive: at most one fires
            report.rules_run.append(rule.code)
            continue
        findings = rule.check(ctx)
        report.rules_run.append(rule.code)
        for diag in findings:
            report.diagnostics.append(diag)
            if diag.certificate is not None:
                certified = True
    return report


def lint_adaptive(
    fn: "AdaptiveRoutingFunction",
    pairs: Sequence[Pair] | None = None,
    *,
    name: str | None = None,
    max_cycles: int = 10_000,
) -> LintReport:
    """Lint an adaptive routing function.

    Wraps ``fn`` in a :class:`~repro.routing.base.RoutingAlgorithm` and
    runs the full rule catalogue: scan-based rules (RTE/PRP) see the
    function's deterministic projection (first candidate), while the CDG
    and certificate rules see the full candidate relation through the
    adaptive CDG and CRT008/CRT001
    (:func:`repro.lint.certificates.adaptive_certificate`).
    """
    return lint_algorithm(
        RoutingAlgorithm(fn), pairs, name=name, max_cycles=max_cycles
    )


def lint_messages(
    messages: Sequence[CheckerMessage],
    *,
    budget: int = 0,
    name: str = "message spec",
) -> LintReport:
    """Spec-level lint: a fixed message set with uniform stall budgets.

    Much narrower than :func:`lint_algorithm` -- only the dependency-graph
    summary and the two self-contained spec certificates apply (see
    :func:`repro.lint.certificates.spec_certificate` for why the
    theorem-based certificates are excluded at this level).
    """
    spec = SystemSpec.uniform(messages, budget=budget)
    report = LintReport(target=name)
    g = spec_dependency_graph(spec)
    acyclic = is_acyclic(g)
    report.rules_run.append("SPC001")
    report.diagnostics.append(
        Diagnostic(
            code="SPC001",
            severity="info",
            message=(
                f"{len(spec.messages)} message(s) over {g.number_of_nodes()} "
                f"channel(s), {g.number_of_edges()} dependencies, "
                f"{'acyclic' if acyclic else 'cyclic'} dependency graph"
            ),
            evidence={
                "messages": len(spec.messages),
                "channels": g.number_of_nodes(),
                "dependencies": g.number_of_edges(),
                "acyclic": acyclic,
            },
        )
    )
    cert = spec_certificate(spec)
    for code in ("CRT001", "CRT005"):
        report.rules_run.append(code)
    if cert is not None:
        evidence = dict(cert.evidence)
        if cert.messages:
            evidence["deadlock_messages"] = list(cert.messages)
        report.diagnostics.append(
            Diagnostic(
                code=cert.code,
                severity="info",
                message=cert.rationale,
                evidence=evidence,
                certificate=cert.verdict,
            )
        )
    return report
