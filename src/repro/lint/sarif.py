"""SARIF 2.1.0 export for lint reports (``repro lint --sarif``).

Lowers :class:`~repro.lint.diagnostics.LintReport` objects to a single
`SARIF <https://docs.oasis-open.org/sarif/sarif/v2.1.0/sarif-v2.1.0.html>`_
log so CI systems and editors can annotate lint targets.  One run per
log; one result per diagnostic; rule metadata (title, severity, paper
reference, help URI into ``docs/LINT.md``) comes from the rule registry,
with unregistered codes (the spec-level ``SPC001`` summary) synthesized
in place.

Severity mapping: ``info`` -> ``note``, ``warning`` -> ``warning``,
``error`` -> ``error`` -- so a SARIF viewer's error count matches the
lint CLI's exit-code criterion.
"""

from __future__ import annotations

from typing import Any, Sequence

from repro.lint.diagnostics import LintReport, jsonable
from repro.lint.rules import get_rule

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/"
    "master/Schemata/sarif-schema-2.1.0.json"
)

#: lint severity -> SARIF result level
LEVELS = {"info": "note", "warning": "warning", "error": "error"}

#: default base for per-rule help URIs (anchors are lower-cased codes)
HELP_BASE = "docs/LINT.md"

#: codes emitted outside the rule registry (spec-level lint)
_EXTRA_RULES: dict[str, tuple[str, str, str]] = {
    # code -> (title, severity, paper_ref)
    "SPC001": (
        "message-spec dependency summary",
        "info",
        "Definition 6 (spec-level lint)",
    ),
}


def _rule_entry(code: str, help_base: str) -> dict[str, Any]:
    """SARIF ``reportingDescriptor`` for one rule code."""
    try:
        rule = get_rule(code)
        title, severity, paper_ref = rule.title, rule.severity, rule.paper_ref
        certificate = rule.certificate
    except KeyError:
        title, severity, paper_ref = _EXTRA_RULES.get(
            code, (f"diagnostic {code}", "info", "")
        )
        certificate = False
    return {
        "id": code,
        "shortDescription": {"text": title},
        "helpUri": f"{help_base}#{code.lower()}",
        "defaultConfiguration": {"level": LEVELS.get(severity, "note")},
        "properties": {
            "severity": severity,
            "paperRef": paper_ref,
            "certificate": certificate,
        },
    }


def sarif_log(
    reports: Sequence[LintReport], *, help_base: str = HELP_BASE
) -> dict[str, Any]:
    """One SARIF 2.1.0 log covering every report's diagnostics."""
    codes = sorted({d.code for report in reports for d in report.diagnostics})
    results: list[dict[str, Any]] = []
    for report in reports:
        for diag in report.diagnostics:
            result: dict[str, Any] = {
                "ruleId": diag.code,
                "level": LEVELS[diag.severity],
                "message": {"text": diag.message},
                "locations": [
                    {
                        "logicalLocations": [
                            {"name": report.target, "kind": "module"}
                        ]
                    }
                ],
                "properties": {
                    "target": report.target,
                    "verdict": report.verdict,
                    "certificate": diag.certificate,
                    "evidence": {
                        k: jsonable(v) for k, v in diag.evidence.items()
                    },
                },
            }
            results.append(result)
    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-lint",
                        "informationUri": help_base,
                        "rules": [_rule_entry(c, help_base) for c in codes],
                    }
                },
                "results": results,
            }
        ],
    }
