"""Definition-6 cycle tilings over channel-id sequences.

The classifier and the static certificates both need the same combinatorial
core: given a CDG cycle and the messages whose paths run along it, enumerate
the ways the messages can *tile* the cycle -- each message holding a
consecutive segment of cycle channels with its header blocked at the first
cycle channel of the next message (the paper's Definition 6 deadlock
configuration).  This module is the single implementation, phrased over
plain channel ids and generic hashable member keys so it serves both the
channel-object domain of :mod:`repro.analysis.classify` (members are
``(source, destination)`` pairs) and the spec-level certificates (members
are message indices).
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Hashable, Mapping, Sequence

#: one maximal stretch of a path along the cycle: (cycle start index, length)
Run = tuple[int, int]


@dataclass
class Tiling:
    """One Definition-6 candidate: members in cycle order with held segments.

    ``members[i]`` holds cycle channels ``starts[i] .. starts[i]+held_lengths[i]-1``
    (indices mod the cycle length) and is blocked at cycle index
    ``starts[(i+1) % len(members)]`` -- the next member's first channel.
    """

    members: list[Hashable]
    starts: list[int]
    held_lengths: list[int]

    def __len__(self) -> int:
        return len(self.members)


def cycle_runs(cycle_cids: Sequence[int], path_cids: Sequence[int]) -> list[Run]:
    """Maximal runs of ``path`` along ``cycle``, as (start index, length).

    A run is a maximal stretch of consecutive path channels that are also
    consecutive cycle channels in cycle order.
    """
    pos = {cid: i for i, cid in enumerate(cycle_cids)}
    n = len(cycle_cids)
    runs: list[Run] = []
    i = 0
    path = list(path_cids)
    while i < len(path):
        cid = path[i]
        if cid not in pos:
            i += 1
            continue
        start = pos[cid]
        length = 1
        while (
            i + length < len(path)
            and path[i + length] in pos
            and pos[path[i + length]] == (start + length) % n
            and length < n
        ):
            length += 1
        runs.append((start, length))
        i += length
    return runs


def enumerate_tilings(
    cycle_length: int,
    candidates: Mapping[Hashable, Sequence[Run]],
    *,
    max_tilings: int = 512,
) -> list[Tiling]:
    """All ways to tile a cycle with member segments per Definition 6.

    Each tiling is a cyclic sequence of distinct members: member ``i``
    holds cycle channels ``[start_i, start_{i+1})`` (in cycle order), where
    ``start_{i+1}`` lies strictly inside member ``i``'s run -- that is
    exactly "the first channel message ``m_{i+1}`` uses in the cycle blocks
    ``m_i``" from the paper's deadlock definition.  Rotations of one tiling
    are the same configuration, so only the smallest viable origin index is
    used.
    """
    n = cycle_length
    # run starts -> list of (member, run_length)
    by_start: dict[int, list[tuple[Hashable, int]]] = {}
    for member, runs in candidates.items():
        for start, length in runs:
            by_start.setdefault(start, []).append((member, length))

    tilings: list[Tiling] = []
    starts = sorted(by_start)
    if not starts:
        return tilings

    def dfs(
        origin: int,
        position: int,
        covered: int,
        used: list[tuple[Hashable, int, int]],  # (member, start, hold)
    ) -> None:
        if len(tilings) >= max_tilings:
            return
        for member, run_len in by_start.get(position, ()):  # members entering here
            if any(m == member for m, _, _ in used):
                continue
            # member may hold h in [1, run_len] cycle channels; the next
            # member's first channel is at position + h, which must lie in
            # this member's run so the member is actually blockable there --
            # h <= run_len - 1, unless the tiling closes exactly at the
            # origin with the origin channel inside the run.
            for hold in range(1, run_len + 1):
                nxt = (position + hold) % n
                new_cov = covered + hold
                if new_cov > n:
                    break
                closes = nxt == origin and new_cov == n
                if closes:
                    if hold <= run_len - 1 or run_len == n:
                        tilings.append(
                            Tiling(
                                members=[m for m, _, _ in used] + [member],
                                starts=[s for _, s, _ in used] + [position],
                                held_lengths=[h for _, _, h in used] + [hold],
                            )
                        )
                    continue
                if hold >= run_len:
                    continue  # successor must start strictly inside the run
                if nxt in by_start:
                    used.append((member, position, hold))
                    dfs(origin, nxt, new_cov, used)
                    used.pop()

    for origin in starts:
        dfs(origin, origin, 0, [])
        if tilings:
            break
    return tilings
