"""Constructive witnesses from static certificates (Theorem 2 schedules).

``CRT005`` certifies ``REACHABLE_DEADLOCK`` via a Definition-6 tiling
whose members meet the cycle only in their own held runs, with
pairwise-disjoint off-cycle approach prefixes.  Theorem 2's proof is
constructive: inject the members on a stall-free schedule timed so each
member reaches its blocking channel exactly one cycle *after* its
successor around the cycle has occupied it.  This module turns that
schedule into a first-class :class:`~repro.analysis.reachability.Witness`
so the certificate fast path can answer ``find_witness=True`` requests
with **zero** BFS states explored.

The schedule is the slack chain over the members in cycle order: member
``j`` first requests its blocked channel at cycle
``T_j + idx_j + held_j`` (``idx_j`` = position of its run start on its
own path), and its successor occupies that channel at the end of cycle
``T_{j+1} + idx_{j+1}``, so

    ``T_{j+1} = T_j + idx_j + held_j - idx_{j+1} - 1``

with the whole chain shifted so the earliest injection lands on cycle 0.
Going once around the loop accumulates total slack
``len(cycle) - len(members) >= 0`` (every member holds at least one
channel), so the chain is always consistent.

Soundness does not rest on that arithmetic: the builder *drives* the
schedule through :meth:`SystemSpec.successors` one synchronous cycle at
a time -- every step of an emitted witness is a genuine successor and
the final state is checked against :meth:`SystemSpec.deadlocked_set`.
Any divergence (or an over-budget scenario) returns ``None`` and the
caller falls back to the BFS.  :func:`validate_witness` exposes the same
step-by-step replay for arbitrary witnesses.
"""

from __future__ import annotations

from typing import Sequence

from repro.analysis.reachability import Witness
from repro.analysis.state import SystemSpec, SystemState
from repro.lint.certificates import Certificate, bump_counter
from repro.topology.channels import Channel

#: construction is abandoned (BFS fallback) beyond these sizes: driving
#: the schedule enumerates successors, which branch per free message
MAX_WITNESS_MESSAGES = 12
MAX_WITNESS_CYCLE = 64


def certificate_witness(
    cert: Certificate,
    spec: SystemSpec | None = None,
    *,
    budget: int = 0,
) -> Witness | None:
    """A replayable witness for a reachable certificate, or ``None``.

    Spec-level CRT005 certificates carry ``member_indices`` into the
    caller's spec (pass it as ``spec`` so the witness is over the same
    message set the search was asked about); cycle-level ones carry their
    members as standalone checker messages (``cert.messages``), from
    which a fresh uniform-budget spec is built.  Only CRT005 is
    constructive today -- the corollary and shared-channel certificates
    (CRT002-004, CRT006-007) assert existence without a schedule.
    """
    if cert.code != "CRT005" or not cert.deadlock_reachable:
        return None
    ev = cert.evidence
    starts = ev.get("starts")
    held = ev.get("held_lengths")
    raw_cycle = ev.get("cycle")
    if starts is None or held is None or raw_cycle is None:
        return None
    cycle = [c.cid if isinstance(c, Channel) else int(c) for c in raw_cycle]
    if spec is not None:
        member_indices = ev.get("member_indices")
        if member_indices is None:
            return None
        members = list(member_indices)
    elif cert.messages:
        spec = SystemSpec.uniform(cert.messages, budget=budget)
        members = list(range(len(cert.messages)))
    else:
        return None
    return build_crt005_witness(spec, members, list(starts), list(held), cycle)


def build_crt005_witness(
    spec: SystemSpec,
    member_indices: Sequence[int],
    starts: Sequence[int],
    held_lengths: Sequence[int],
    cycle: Sequence[int],
) -> Witness | None:
    """Drive the Theorem-2 stall-free schedule to its deadlock state.

    ``member_indices`` index into ``spec.messages``; ``starts`` and
    ``held_lengths`` describe each member's held run on ``cycle`` (a
    cid tuple), exactly as CRT005 evidence records them.  Returns a
    validated witness or ``None`` when the tiling data is inconsistent
    or the schedule diverges (the caller then falls back to the BFS).
    """
    n = len(cycle)
    m = len(member_indices)
    if m < 2 or sum(held_lengths) != n:
        bump_counter("lint.certificate.witness_failed")
        return None
    if len(spec.messages) > MAX_WITNESS_MESSAGES or n > MAX_WITNESS_CYCLE:
        bump_counter("lint.certificate.witness_failed")
        return None
    # members in cycle order; their held runs must partition the cycle
    # consecutively (member j's blocked channel = member j+1's run start)
    order = sorted(range(m), key=lambda j: starts[j])
    for a, b in zip(order, order[1:] + order[:1]):
        if (starts[a] + held_lengths[a]) % n != starts[b] % n:
            bump_counter("lint.certificate.witness_failed")
            return None
    # position of each member's run start on its own path
    idx: dict[int, int] = {}
    for j in range(m):
        i = member_indices[j]
        msg = spec.messages[i]
        try:
            idx[j] = msg.path.index(cycle[starts[j]])
        except ValueError:
            bump_counter("lint.certificate.witness_failed")
            return None
        if idx[j] + held_lengths[j] >= len(msg.path):
            bump_counter("lint.certificate.witness_failed")
            return None
        if msg.length < held_lengths[j]:
            bump_counter("lint.certificate.witness_failed")
            return None
    # slack-chain injection times, shifted so the earliest is cycle 0
    times = {order[0]: 0}
    for a, b in zip(order, order[1:]):
        times[b] = times[a] + idx[a] + held_lengths[a] - idx[b] - 1
    shift = -min(times.values())
    inject_at = {member_indices[j]: t + shift for j, t in times.items()}
    last_freeze = max(
        inject_at[member_indices[j]] + idx[j] + held_lengths[j] for j in range(m)
    )
    witness = _drive_schedule(spec, inject_at, max_rounds=last_freeze + 2)
    bump_counter(
        "lint.certificate.witness_emitted"
        if witness is not None
        else "lint.certificate.witness_failed"
    )
    return witness


def _drive_schedule(
    spec: SystemSpec, inject_at: dict[int, int], *, max_rounds: int
) -> Witness | None:
    """Follow the injection schedule through ``successors`` to a deadlock.

    Per cycle, each scheduled member injects exactly at its time, then
    advances whenever free (never stalls); every other message only ever
    waits.  The matching joint choice is looked up among the genuine
    successors, so the resulting step list is valid by construction.
    """
    members = set(inject_at)
    state = spec.initial_state()
    steps: list[tuple[str, ...]] = []
    states: list[SystemState] = []
    for t in range(max_rounds + 1):
        chosen: tuple[SystemState, tuple[str, ...]] | None = None
        for nxt, actions in spec.successors(state):
            if _schedule_actions_ok(actions, state, t, inject_at, members):
                chosen = (nxt, actions)
                break
        if chosen is None:
            return None
        state, actions = chosen
        steps.append(actions)
        states.append(state)
        dead = spec.deadlocked_set(state)
        if dead:
            if members <= set(dead):
                return Witness(spec=spec, steps=steps, states=states, deadlocked=dead)
            return None
    return None


def _schedule_actions_ok(
    actions: tuple[str, ...],
    prev: SystemState,
    t: int,
    inject_at: dict[int, int],
    members: set[int],
) -> bool:
    for i, act in enumerate(actions):
        if i not in members:
            if act != "wait":
                return False
            continue
        h = prev[i][0]
        if h == 0:
            if act != ("try" if t == inject_at[i] else "wait"):
                return False
        elif act not in ("adv", "freeze"):
            # members advance greedily: no stalls, no losses, no drains
            return False
    return True


def validate_witness(witness: Witness) -> bool:
    """Replay a witness step by step through ``SystemSpec.successors``.

    Every ``(steps[t], states[t])`` pair must be a genuine successor of
    the previous state, and the final state's wait-for cycle must be
    exactly the witness's ``deadlocked`` set.  This is the independent
    soundness check applied to constructed (non-BFS) witnesses; it works
    equally on BFS-produced ones.
    """
    spec = witness.spec
    if not witness.steps or len(witness.steps) != len(witness.states):
        return False
    state = spec.initial_state()
    for actions, claimed in zip(witness.steps, witness.states):
        if not any(
            nxt == claimed and acts == actions
            for nxt, acts in spec.successors(state)
        ):
            return False
        state = claimed
    return spec.deadlocked_set(state) == witness.deadlocked


def replay_certificate_witness(
    witness: Witness,
    network: object,
    routing: object,
    src_dst: Sequence[tuple],
    *,
    max_cycles: int = 10_000,
) -> bool:
    """Cross-validate a witness on the flit-level simulator.

    Thin wrapper over :func:`repro.analysis.schedules.replay_witness`
    that records the outcome in the ``lint.certificate.replay.*``
    counters (the battery's cross-check task kind and the soundness
    tests both come through here).
    """
    from repro.analysis.schedules import replay_witness

    result = replay_witness(
        witness, network, routing, src_dst, max_cycles=max_cycles  # type: ignore[arg-type]
    )
    ok = bool(result.deadlocked)
    bump_counter(
        "lint.certificate.replay.pass" if ok else "lint.certificate.replay.fail"
    )
    return ok
