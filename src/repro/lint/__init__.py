"""Static deadlock linter for oblivious and adaptive wormhole routing.

A rule engine over routing algorithms and message specs that turns the
paper's static arguments into machine-checkable *certificates*:

* acyclic CDG  =>  ``DEADLOCK_FREE``  (Dally--Seitz),
* structural properties (Corollaries 1-3) or constructive tilings
  (Theorems 2-4)  =>  ``REACHABLE_DEADLOCK``,
* connected acyclic escape subfunction  =>  ``DEADLOCK_FREE`` for
  adaptive routing (Duato, CRT008).

Reachable verdicts from the Theorem-2 tiling (CRT005) are *constructive*:
:func:`certificate_witness` replays the certificate's stall-free
injection schedule through the state model and emits a validated
:class:`~repro.analysis.reachability.Witness` without any search.

The analysis layer consults these certificates as a pre-pass before
running the reachability search (gated by ``REPRO_STATIC_CERTIFICATES``);
``python -m repro lint`` exposes the full rule catalogue on the command
line, with ``--sarif`` producing a SARIF 2.1.0 log for CI.  See
``docs/LINT.md`` for the catalogue with paper citations.
"""

from repro.lint.certificates import (
    CERT_COUNTERS,
    ENV_VAR,
    Certificate,
    CertificateMismatch,
    adaptive_certificate,
    algorithm_certificate,
    bump_counter,
    certificates_mode,
    cycle_certificate,
    spec_certificate,
    spec_dependency_graph,
    suffix_tiling_messages,
)
from repro.lint.diagnostics import (
    DEADLOCK_FREE,
    REACHABLE_DEADLOCK,
    Diagnostic,
    LintReport,
    jsonable,
)
from repro.lint.engine import (
    LintContext,
    lint_adaptive,
    lint_algorithm,
    lint_messages,
)
from repro.lint.rules import Rule, all_rules, get_rule
from repro.lint.sarif import sarif_log
from repro.lint.tiling import Run, Tiling, cycle_runs, enumerate_tilings
from repro.lint.witness import (
    build_crt005_witness,
    certificate_witness,
    replay_certificate_witness,
    validate_witness,
)

__all__ = [
    "CERT_COUNTERS",
    "ENV_VAR",
    "DEADLOCK_FREE",
    "REACHABLE_DEADLOCK",
    "Certificate",
    "CertificateMismatch",
    "Diagnostic",
    "LintContext",
    "LintReport",
    "Rule",
    "Run",
    "Tiling",
    "adaptive_certificate",
    "algorithm_certificate",
    "all_rules",
    "build_crt005_witness",
    "bump_counter",
    "certificate_witness",
    "certificates_mode",
    "cycle_certificate",
    "cycle_runs",
    "enumerate_tilings",
    "get_rule",
    "jsonable",
    "lint_adaptive",
    "lint_algorithm",
    "lint_messages",
    "replay_certificate_witness",
    "sarif_log",
    "spec_certificate",
    "spec_dependency_graph",
    "suffix_tiling_messages",
    "validate_witness",
]
