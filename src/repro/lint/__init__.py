"""Static deadlock linter for oblivious wormhole routing.

A rule engine over routing algorithms and message specs that turns the
paper's static arguments into machine-checkable *certificates*:

* acyclic CDG  =>  ``DEADLOCK_FREE``  (Dally--Seitz),
* structural properties (Corollaries 1-3) or constructive tilings
  (Theorems 2-4)  =>  ``REACHABLE_DEADLOCK``.

The analysis layer consults these certificates as a pre-pass before
running the reachability search (gated by ``REPRO_STATIC_CERTIFICATES``);
``python -m repro lint`` exposes the full rule catalogue on the command
line.  See ``docs/LINT.md`` for the catalogue with paper citations.
"""

from repro.lint.certificates import (
    ENV_VAR,
    Certificate,
    CertificateMismatch,
    algorithm_certificate,
    certificates_mode,
    cycle_certificate,
    spec_certificate,
    spec_dependency_graph,
    suffix_tiling_messages,
)
from repro.lint.diagnostics import (
    DEADLOCK_FREE,
    REACHABLE_DEADLOCK,
    Diagnostic,
    LintReport,
    jsonable,
)
from repro.lint.engine import LintContext, lint_algorithm, lint_messages
from repro.lint.rules import Rule, all_rules, get_rule
from repro.lint.tiling import Run, Tiling, cycle_runs, enumerate_tilings

__all__ = [
    "ENV_VAR",
    "DEADLOCK_FREE",
    "REACHABLE_DEADLOCK",
    "Certificate",
    "CertificateMismatch",
    "Diagnostic",
    "LintContext",
    "LintReport",
    "Rule",
    "Run",
    "Tiling",
    "algorithm_certificate",
    "all_rules",
    "certificates_mode",
    "cycle_certificate",
    "cycle_runs",
    "enumerate_tilings",
    "get_rule",
    "jsonable",
    "lint_algorithm",
    "lint_messages",
    "spec_certificate",
    "spec_dependency_graph",
    "suffix_tiling_messages",
]
