"""Structured lint diagnostics.

A :class:`Diagnostic` is one finding of one rule: a stable rule code, a
severity, a human-readable message, and machine-readable *evidence* -- the
violating ``(s, d, w)`` triple, the concrete CDG cycle, the shared channel,
the replayable deadlock configuration.  Evidence keeps real Python objects
(channels, node ids, :class:`~repro.analysis.state.CheckerMessage`) so
in-process consumers (the certificate fast-path, the evidence-replay tests)
can act on it directly; :func:`jsonable` lowers it to plain JSON for the
CLI and the campaign ledger.

A :class:`LintReport` is the outcome of one lint run: the diagnostics, the
rules that ran, and at most one *certificate* -- a static verdict strong
enough to replace the reachability search (``DEADLOCK_FREE`` from
Dally--Seitz acyclicity, ``REACHABLE_DEADLOCK`` from the Section 5
corollaries / theorem constructions).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping

#: certificate verdicts
DEADLOCK_FREE = "DEADLOCK_FREE"
REACHABLE_DEADLOCK = "REACHABLE_DEADLOCK"

#: severity levels, in increasing order of badness
SEVERITIES = ("info", "warning", "error")
_SEV_RANK = {s: i for i, s in enumerate(SEVERITIES)}


def jsonable(value: Any) -> Any:
    """Lower an evidence value to plain JSON types.

    Channels become ``{"cid", "name"}`` dicts, tuples become lists, node
    ids and other rich objects fall back to ``str``; dict keys are always
    stringified (node-id tuples are not valid JSON keys).
    """
    from repro.topology.channels import Channel

    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, Channel):
        return {"cid": value.cid, "name": value.short()}
    if isinstance(value, Mapping):
        return {str(k): jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple, set, frozenset)):
        seq = sorted(value, key=repr) if isinstance(value, (set, frozenset)) else value
        return [jsonable(v) for v in seq]
    if hasattr(value, "path") and hasattr(value, "length") and hasattr(value, "tag"):
        # CheckerMessage (kept duck-typed to avoid an import cycle)
        return {"path": list(value.path), "length": value.length, "tag": value.tag}
    return str(value)


@dataclass(frozen=True)
class Diagnostic:
    """One finding of one lint rule."""

    code: str
    severity: str
    message: str
    evidence: Mapping[str, Any] = field(default_factory=dict)
    #: set on certificate-bearing diagnostics: DEADLOCK_FREE / REACHABLE_DEADLOCK
    certificate: str | None = None

    def __post_init__(self) -> None:
        if self.severity not in SEVERITIES:
            raise ValueError(
                f"severity must be one of {SEVERITIES}, got {self.severity!r}"
            )
        if self.certificate not in (None, DEADLOCK_FREE, REACHABLE_DEADLOCK):
            raise ValueError(f"unknown certificate {self.certificate!r}")

    def to_json(self) -> dict[str, Any]:
        return {
            "code": self.code,
            "severity": self.severity,
            "message": self.message,
            "evidence": {k: jsonable(v) for k, v in self.evidence.items()},
            "certificate": self.certificate,
        }

    def render(self) -> str:
        cert = f"  [certificate: {self.certificate}]" if self.certificate else ""
        return f"{self.code} {self.severity}: {self.message}{cert}"


@dataclass
class LintReport:
    """All diagnostics from one lint run over one target."""

    target: str
    diagnostics: list[Diagnostic] = field(default_factory=list)
    rules_run: list[str] = field(default_factory=list)

    # ------------------------------------------------------------------
    # verdicts
    # ------------------------------------------------------------------
    @property
    def certificate_diagnostic(self) -> Diagnostic | None:
        """The (single) certificate-bearing diagnostic, if any."""
        for d in self.diagnostics:
            if d.certificate is not None:
                return d
        return None

    @property
    def certificate(self) -> str | None:
        d = self.certificate_diagnostic
        return None if d is None else d.certificate

    @property
    def verdict(self) -> str:
        """``deadlock_free`` / ``reachable_deadlock`` / ``undecided``."""
        cert = self.certificate
        if cert == DEADLOCK_FREE:
            return "deadlock_free"
        if cert == REACHABLE_DEADLOCK:
            return "reachable_deadlock"
        return "undecided"

    def by_severity(self, severity: str) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.severity == severity]

    @property
    def errors(self) -> list[Diagnostic]:
        return self.by_severity("error")

    @property
    def max_severity(self) -> str | None:
        if not self.diagnostics:
            return None
        return max((d.severity for d in self.diagnostics), key=_SEV_RANK.__getitem__)

    @property
    def exit_code(self) -> int:
        """0 when clean (no error-severity findings), 1 otherwise."""
        return 1 if self.errors else 0

    # ------------------------------------------------------------------
    # output
    # ------------------------------------------------------------------
    def to_json(self) -> dict[str, Any]:
        return {
            "target": self.target,
            "verdict": self.verdict,
            "certificate": self.certificate,
            "certificate_code": (
                None
                if self.certificate_diagnostic is None
                else self.certificate_diagnostic.code
            ),
            "max_severity": self.max_severity,
            "rules_run": list(self.rules_run),
            "diagnostics": [d.to_json() for d in self.diagnostics],
        }

    def render(self, *, verbose: bool = False) -> str:
        lines = [f"lint {self.target}: verdict={self.verdict}"
                 f" ({len(self.diagnostics)} finding"
                 f"{'s' if len(self.diagnostics) != 1 else ''},"
                 f" {len(self.rules_run)} rules run)"]
        for d in self.diagnostics:
            lines.append("  " + d.render())
            if verbose and d.evidence:
                for k, v in d.evidence.items():
                    lines.append(f"      {k}: {jsonable(v)}")
        return "\n".join(lines)
