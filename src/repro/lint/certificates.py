"""Static deadlock certificates (Dally--Seitz and paper Section 5).

A :class:`Certificate` is a machine-checked static verdict strong enough to
replace the exhaustive reachability search:

``DEADLOCK_FREE``
    The dependency structure is acyclic (Dally & Seitz).  Sound by the
    standard argument: any wormhole deadlock contains a wait-for cycle
    among messages, and each holder's contiguous occupied path segment maps
    the waited-on channels onto a cycle of dependency edges -- impossible
    in an acyclic dependency graph.  Budget-independent (stalls add no
    wait-for edges).  For *adaptive* routing functions the same verdict
    comes from Duato's escape-channel condition (``CRT008``,
    :func:`adaptive_certificate`): a connected escape subfunction with an
    acyclic escape CDG, evidenced by the escape channel set and a
    topological drain order.

``REACHABLE_DEADLOCK``
    A Definition-6 deadlock configuration exists *and* is provably
    reachable, by one of:

    * **Disjoint tiling** (``CRT005``, the Theorem 2 shape): the tiling's
      members interact only on the cycle -- each member's path meets the
      cycle in exactly its single run, and the off-cycle approach prefixes
      are pairwise disjoint.  Then the members can be injected on a
      schedule where each one runs unobstructed to its blocking position
      after its successor has occupied it; the circular arrival constraints
      have total slack ``sum(held) = len(cycle) > 0`` so a consistent
      schedule always exists, with no stalls (budget 0) and message lengths
      ``>= held`` keeping every held channel covered by the flit train.
      This certificate is self-contained: it does not assume any theorem.
    * **Single shared channel** (``CRT006`` Theorem 3 with minimal routing,
      ``CRT007`` Theorem 4 with two messages): the members' off-cycle
      prefixes pairwise intersect in exactly one common channel.  These
      mirror the paper's theorem hypotheses and are issued only at the
      cycle/algorithm level, where the claim -- *some* scenario of the
      cycle deadlocks -- matches the theorems' existence statements.
    * **Closure corollaries** (``CRT002``--``CRT004``, Corollaries 1--3):
      an input-channel-independent / suffix-closed / coherent algorithm has
      no unreachable configurations, so a statically verified suffix-message
      tiling of any CDG cycle (one single-flit message per cycle edge,
      starting exactly on that edge) is a reachable deadlock.

Certificates always carry replayable evidence; every reachable certificate
includes the concrete :class:`~repro.analysis.state.CheckerMessage` set of
its deadlock configuration so tests can hand it back to the search engine.

``REPRO_STATIC_CERTIFICATES`` (``on`` / ``off`` / ``check``) gates the
fast-path consumers, mirroring ``REPRO_SEARCH_ENGINE`` from the fast/
reference search pattern: ``check`` runs both the certificate and the
search and raises :class:`CertificateMismatch` on disagreement.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Any, Sequence

import networkx as nx

from repro.analysis.state import CheckerMessage, SystemSpec
from repro.cdg.analysis import CycleEnumeration, is_acyclic
from repro.lint.diagnostics import DEADLOCK_FREE, REACHABLE_DEADLOCK
from repro.lint.tiling import Tiling, cycle_runs, enumerate_tilings
from repro.routing.base import RoutingAlgorithm
from repro.routing.properties import PropertyScan
from repro.topology.channels import Channel, NodeId

Pair = tuple[NodeId, NodeId]

ENV_VAR = "REPRO_STATIC_CERTIFICATES"
MODES = ("on", "off", "check")


def certificates_mode(override: str | None = None) -> str:
    """Resolve the certificate gating mode (parameter beats environment)."""
    mode = override if override is not None else os.environ.get(ENV_VAR, "on")
    if mode not in MODES:
        raise ValueError(
            f"unknown certificates mode {mode!r}; use one of {', '.join(MODES)}"
        )
    return mode


class CertificateMismatch(AssertionError):
    """A static certificate disagreed with the search engine (check mode)."""


#: process-wide activity counters for the certificate layer, mirrored into
#: telemetry when it is enabled; always incremented so tests can assert on
#: them without standing up the telemetry stack
CERT_COUNTERS: dict[str, int] = {
    "lint.certificate.witness_emitted": 0,
    "lint.certificate.witness_failed": 0,
    "lint.certificate.replay.pass": 0,
    "lint.certificate.replay.fail": 0,
    "lint.certificate.adaptive.decided": 0,
    "lint.certificate.adaptive.undecided": 0,
}


def bump_counter(name: str, value: int = 1) -> None:
    """Increment a certificate-activity counter (and telemetry, if on)."""
    CERT_COUNTERS[name] = CERT_COUNTERS.get(name, 0) + value
    from repro.obs import get as _obs_get

    tel = _obs_get()
    if tel is not None:
        tel.incr(name, value)


@dataclass(frozen=True)
class Certificate:
    """A static verdict with its machine-checkable evidence."""

    code: str  # lint rule code, e.g. "CRT001"
    verdict: str  # DEADLOCK_FREE | REACHABLE_DEADLOCK
    rationale: str
    evidence: dict[str, Any] = field(default_factory=dict)
    #: for reachable verdicts: the concrete deadlock configuration, replayable
    #: through ``search_deadlock`` with certificates off
    messages: tuple[CheckerMessage, ...] = ()

    def __post_init__(self) -> None:
        if self.verdict not in (DEADLOCK_FREE, REACHABLE_DEADLOCK):
            raise ValueError(f"unknown certificate verdict {self.verdict!r}")

    @property
    def deadlock_reachable(self) -> bool:
        return self.verdict == REACHABLE_DEADLOCK


# ----------------------------------------------------------------------
# spec level (fixed message set): used by search_deadlock's pre-pass
# ----------------------------------------------------------------------
def spec_dependency_graph(spec: SystemSpec) -> nx.DiGraph:
    """Channel-id dependency graph induced by the spec's message paths."""
    g = nx.DiGraph()
    for m in spec.messages:
        g.add_nodes_from(m.path)
        g.add_edges_from(zip(m.path, m.path[1:]))
    return g


def spec_certificate(
    spec: SystemSpec, *, max_cycles: int = 200, max_tilings: int = 64
) -> Certificate | None:
    """Static verdict for a fixed scenario, or ``None`` when undecided.

    Only the two self-contained arguments are used at this level: the
    acyclic dependency graph (deadlock-free at any budget) and the disjoint
    tiling (reachable with the spec's own lengths, at any budget).  The
    theorem-based shared-channel certificates are deliberately *not*
    applied here: with fixed message lengths their hypotheses concern the
    existence of some scenario, not this exact one.
    """
    g = spec_dependency_graph(spec)
    if is_acyclic(g):
        order = {cid: i for i, cid in enumerate(nx.topological_sort(g))}
        return Certificate(
            code="CRT001",
            verdict=DEADLOCK_FREE,
            rationale=(
                "message dependency graph is acyclic (Dally-Seitz): every "
                "wormhole deadlock needs a dependency cycle"
            ),
            evidence={"numbering": order, "channels": g.number_of_nodes()},
        )

    paths = [m.path for m in spec.messages]
    lengths = [m.length for m in spec.messages]
    count = 0
    for cyc in nx.simple_cycles(g):
        count += 1
        if count > max_cycles:
            break
        cycle = tuple(cyc)
        candidates = {
            i: runs
            for i, p in enumerate(paths)
            if (runs := cycle_runs(cycle, p))
        }
        for tiling in enumerate_tilings(len(cycle), candidates, max_tilings=max_tilings):
            member_info = _check_disjoint_tiling(cycle, paths, tiling)
            if member_info is None:
                continue
            if any(lengths[m] < h for m, h in zip(tiling.members, tiling.held_lengths)):
                continue
            members = [spec.messages[i] for i in tiling.members]
            return Certificate(
                code="CRT005",
                verdict=REACHABLE_DEADLOCK,
                rationale=(
                    "dependency cycle admits a Definition-6 tiling whose members "
                    "meet the cycle only in their own runs with pairwise-disjoint "
                    "approach prefixes (Theorem 2 shape); a stall-free injection "
                    "schedule reaches the deadlock"
                ),
                evidence={
                    "cycle": list(cycle),
                    "members": [m.tag or f"msg{i}" for i, m in zip(tiling.members, members)],
                    "member_indices": list(tiling.members),
                    "starts": list(tiling.starts),
                    "held_lengths": list(tiling.held_lengths),
                },
                messages=tuple(members),
            )
    return None


def _check_disjoint_tiling(
    cycle: Sequence[int],
    paths: Sequence[Sequence[int]],
    tiling: Tiling,
) -> list[tuple[int, tuple[int, ...]]] | None:
    """Verify the CRT005 conditions for one tiling over cid paths.

    Returns ``[(block_position, prefix)]`` per member, or ``None`` if any
    condition fails:

    * at least two members;
    * each member's path meets the cycle in exactly the held run's channels
      (one consecutive stretch -- so its approach prefix avoids the cycle
      and it never wanders back onto it);
    * the blocked channel really is on the path right after the held
      segment;
    * the off-cycle prefixes are pairwise disjoint.
    """
    if len(tiling) < 2:
        return None
    n = len(cycle)
    cycset = set(cycle)
    out: list[tuple[int, tuple[int, ...]]] = []
    prefixes: list[set[int]] = []
    for member, start, held in zip(tiling.members, tiling.starts, tiling.held_lengths):
        path = list(paths[member])
        # the member's run: consecutive cycle channels from its start until
        # the path leaves the cycle order
        run_channels = []
        try:
            idx = path.index(cycle[start])
        except ValueError:
            return None
        j = idx
        while j < len(path) and path[j] == cycle[(start + (j - idx)) % n] and j - idx < n:
            run_channels.append(path[j])
            j += 1
        if set(path) & cycset != set(run_channels):
            return None
        if idx + held >= len(path) or path[idx + held] != cycle[(start + held) % n]:
            return None
        prefix = tuple(path[:idx])
        pset = set(prefix)
        if pset & cycset:
            return None  # defensive; implied by the exact-run condition
        if any(pset & q for q in prefixes):
            return None
        prefixes.append(pset)
        out.append((idx + held, prefix))
    return out


# ----------------------------------------------------------------------
# adaptive routing: Duato's escape-channel certificate (CRT008)
# ----------------------------------------------------------------------
def adaptive_certificate(fn: Any) -> Certificate | None:
    """Static verdict for an adaptive routing function, or ``None``.

    Duato's sufficiency (``CRT008``): a *connected* escape subfunction
    with an acyclic escape CDG makes the adaptive function deadlock-free
    even though its full CDG may be cyclic -- a blocked message can always
    fall back to the escape channels, which drain in topological order
    (the certificate's evidence carries that order).  Functions without
    an escape subfunction fall back to Dally--Seitz over the full
    adaptive CDG (``CRT001``).  There is no static reachable-deadlock
    argument at this level: the oblivious tiling certificates reason over
    fixed paths, which an adaptive router can abandon mid-flight.
    """
    from repro.cdg.adaptive import build_adaptive_cdg, duato_certificate

    if getattr(fn, "escape_function", None) is not None:
        duato = duato_certificate(fn)
        if duato.deadlock_free:
            bump_counter("lint.certificate.adaptive.decided")
            return Certificate(
                code="CRT008",
                verdict=DEADLOCK_FREE,
                rationale=(
                    "connected escape subfunction with an acyclic escape CDG "
                    "(Duato): every blocked message can always route onto the "
                    "escape channels, which drain in topological order"
                ),
                evidence={
                    "escape_channels": list(duato.escape_channels),
                    "escape_order": [ch.short() for ch in duato.escape_order],
                    "full_cdg_acyclic": duato.full_cdg_acyclic,
                    "escape_connected": duato.escape_connected,
                },
            )
        bump_counter("lint.certificate.adaptive.undecided")
        return None
    full = build_adaptive_cdg(fn)
    if is_acyclic(full):
        order = {ch.short(): i for i, ch in enumerate(nx.topological_sort(full))}
        bump_counter("lint.certificate.adaptive.decided")
        return Certificate(
            code="CRT001",
            verdict=DEADLOCK_FREE,
            rationale=(
                "full adaptive channel dependency graph is acyclic: "
                "deadlock-free by Dally-Seitz regardless of route choice"
            ),
            evidence={"numbering": order, "channels": full.number_of_nodes()},
        )
    bump_counter("lint.certificate.adaptive.undecided")
    return None


# ----------------------------------------------------------------------
# cycle / algorithm level: used by classify_cycle and the lint engine
# ----------------------------------------------------------------------
def _channel_tilings(
    alg: RoutingAlgorithm,
    cycle: Sequence[Channel],
    scan: PropertyScan,
    *,
    max_tilings: int,
) -> tuple[tuple[int, ...], dict[Pair, tuple[int, ...]], list[Tiling]]:
    """Cid cycle, member paths, and Definition-6 tilings for one CDG cycle."""
    cyc = tuple(ch.cid for ch in cycle)
    member_paths: dict[Pair, tuple[int, ...]] = {}
    candidates: dict[Pair, list[tuple[int, int]]] = {}
    for pair, path in scan.paths.items():
        if path is None:
            continue
        cids = tuple(ch.cid for ch in path)
        runs = cycle_runs(cyc, cids)
        if runs:
            member_paths[pair] = cids
            candidates[pair] = runs
    return cyc, member_paths, enumerate_tilings(len(cyc), candidates, max_tilings=max_tilings)


def _shared_channel_structure(
    cycle: Sequence[int],
    paths: dict[Pair, tuple[int, ...]],
    tiling: Tiling,
) -> tuple[int, list[tuple[int, tuple[int, ...]]]] | None:
    """Single-shared-channel check (Theorems 3/4): prefixes meet in one channel.

    Same per-member conditions as the disjoint tiling, except the off-cycle
    prefixes must all contain one common channel ``x`` and pairwise
    intersect in exactly ``{x}``.  Returns ``(x, member_info)`` or ``None``.
    """
    if len(tiling) < 2:
        return None
    n = len(cycle)
    cycset = set(cycle)
    prefixes: list[set[int]] = []
    info: list[tuple[int, tuple[int, ...]]] = []
    for member, start, held in zip(tiling.members, tiling.starts, tiling.held_lengths):
        path = list(paths[member])
        try:
            idx = path.index(cycle[start])
        except ValueError:
            return None
        run_channels = []
        j = idx
        while j < len(path) and path[j] == cycle[(start + (j - idx)) % n] and j - idx < n:
            run_channels.append(path[j])
            j += 1
        if set(path) & cycset != set(run_channels):
            return None
        if idx + held >= len(path) or path[idx + held] != cycle[(start + held) % n]:
            return None
        prefix = tuple(path[:idx])
        prefixes.append(set(prefix))
        info.append((idx + held, prefix))
    common = set.intersection(*prefixes) if prefixes else set()
    if len(common) != 1:
        return None
    x = next(iter(common))
    for a in range(len(prefixes)):
        for b in range(a + 1, len(prefixes)):
            if prefixes[a] & prefixes[b] != {x}:
                return None
    return x, info


def _tiling_messages(
    alg: RoutingAlgorithm, tiling: Tiling, paths: dict[Pair, tuple[int, ...]]
) -> tuple[CheckerMessage, ...]:
    """The tiling's members as checker messages at minimum adequate lengths."""
    return tuple(
        CheckerMessage(
            path=paths[pair], length=max(1, held), tag=f"{pair[0]}->{pair[1]}"
        )
        for pair, held in zip(tiling.members, tiling.held_lengths)
    )


def suffix_tiling_messages(
    alg: RoutingAlgorithm, cdg: nx.DiGraph, cycle: Sequence[Channel]
) -> list[CheckerMessage] | None:
    """One single-flit message per cycle edge, verified to start on it.

    For edge ``c_i -> c_{i+1}`` pick an inducing pair ``(s, d)`` and check
    that the algorithm routes ``(src(c_i), d)`` along a path that *starts*
    ``[c_i, c_{i+1}, ...]`` -- the suffix message of the Corollary 1--3
    arguments.  The resulting set tiles the cycle: message ``i`` holds
    ``c_i`` (one flit) with its header blocked at ``c_{i+1}``, held by
    message ``i+1``.  Returns ``None`` if any edge has no verifiable
    suffix message, in which case no corollary certificate is issued.
    """
    msgs: list[CheckerMessage] = []
    n = len(cycle)
    for i, ch in enumerate(cycle):
        nxt = cycle[(i + 1) % n]
        data = cdg.get_edge_data(ch, nxt)
        if data is None:
            return None
        found = None
        for _, d in sorted(data["info"].pairs, key=repr):
            if ch.src == d:
                continue
            p = alg.try_path(ch.src, d)
            if p is not None and len(p) >= 2 and p[0].cid == ch.cid and p[1].cid == nxt.cid:
                found = CheckerMessage(
                    path=tuple(c.cid for c in p),
                    length=1,
                    tag=f"{ch.short()}~>{d}",
                )
                break
        if found is None:
            return None
        msgs.append(found)
    return msgs


def _covers_all_pairs(scan: PropertyScan) -> bool:
    nodes = scan.alg.network.nodes
    want = {(s, d) for s in nodes for d in nodes if s != d}
    return set(scan.domain) == want


def _corollary_certificate(
    alg: RoutingAlgorithm,
    scan: PropertyScan,
    cdg: nx.DiGraph,
    cycle: Sequence[Channel],
) -> Certificate | None:
    """Corollary 1/2/3 certificate for one concrete CDG cycle."""
    suffix_ok = scan.suffix_closed()
    coherent = suffix_ok and scan.coherent()
    ici = (
        scan.input_channel_independent()
        and scan.connected()
        and _covers_all_pairs(scan)
    )
    if not (suffix_ok or coherent or ici):
        return None
    msgs = suffix_tiling_messages(alg, cdg, cycle)
    if msgs is None:
        return None
    if coherent:
        code, prop, ref = "CRT004", "coherent", "Corollary 3"
    elif suffix_ok:
        code, prop, ref = "CRT003", "suffix-closed", "Corollary 2"
    else:
        code, prop, ref = "CRT002", "input-channel independent (N x N -> C)", "Corollary 1"
    return Certificate(
        code=code,
        verdict=REACHABLE_DEADLOCK,
        rationale=(
            f"routing is {prop}, so it has no unreachable configurations "
            f"({ref}); the cycle's verified suffix-message tiling is therefore "
            "a reachable deadlock"
        ),
        evidence={
            "property": prop,
            "cycle": [ch for ch in cycle],
            "suffix_messages": list(msgs),
        },
        messages=tuple(msgs),
    )


def cycle_certificate(
    alg: RoutingAlgorithm,
    cycle: Sequence[Channel],
    pairs: Sequence[Pair] | None = None,
    *,
    scan: PropertyScan | None = None,
    cdg: nx.DiGraph | None = None,
    max_tilings: int = 256,
) -> Certificate | None:
    """Static REACHABLE_DEADLOCK verdict for one CDG cycle, or ``None``.

    The existence claim matches :func:`repro.analysis.classify.classify_cycle`:
    *some* scenario of messages realising this cycle reaches a deadlock.
    No deadlock-free certificate exists at this level -- a cycle that
    resists every static argument still needs the search.
    """
    if scan is None:
        scan = PropertyScan(alg, pairs)
    cyc, member_paths, tilings = _channel_tilings(alg, cycle, scan, max_tilings=max_tilings)
    by_cid = {ch.cid: ch for ch in cycle}

    # self-contained disjoint-tiling argument first
    for tiling in tilings:
        if _check_disjoint_tiling(cyc, _as_list(member_paths, tiling), tiling_local(tiling)) is not None:
            return Certificate(
                code="CRT005",
                verdict=REACHABLE_DEADLOCK,
                rationale=(
                    "Definition-6 tiling with pairwise-disjoint off-cycle "
                    "approaches (Theorem 2 shape); reachable by a stall-free "
                    "injection schedule"
                ),
                evidence=_tiling_evidence(cycle, tiling),
                messages=_tiling_messages(alg, tiling, member_paths),
            )

    # closure corollaries (Cor. 1-3) over the scan's domain
    if cdg is None:
        from repro.cdg.build import build_cdg

        cdg = build_cdg(alg, list(scan.domain))
    cert = _corollary_certificate(alg, scan, cdg, cycle)
    if cert is not None:
        return cert

    # theorem-based shared-channel structure
    for tiling in tilings:
        shared = _shared_channel_structure(cyc, member_paths, tiling)
        if shared is None:
            continue
        x, _ = shared
        if len(tiling) == 2:
            return Certificate(
                code="CRT007",
                verdict=REACHABLE_DEADLOCK,
                rationale=(
                    "two messages tile the cycle and share exactly one channel "
                    "outside it (Theorem 4): the deadlocked configuration is "
                    "reachable"
                ),
                evidence={**_tiling_evidence(cycle, tiling), "shared_channel": by_cid.get(x, x)},
                messages=_tiling_messages(alg, tiling, member_paths),
            )
        if scan.minimal():
            return Certificate(
                code="CRT006",
                verdict=REACHABLE_DEADLOCK,
                rationale=(
                    "minimal routing with a cycle whose tiling members all share "
                    "a single channel outside the cycle (Theorem 3): the deadlock "
                    "is reachable"
                ),
                evidence={**_tiling_evidence(cycle, tiling), "shared_channel": by_cid.get(x, x)},
                messages=_tiling_messages(alg, tiling, member_paths),
            )
    return None


def _as_list(paths: dict[Pair, tuple[int, ...]], tiling: Tiling) -> list[tuple[int, ...]]:
    """Member paths indexed positionally, matching the index-rewritten tiling."""
    return [paths[m] for m in tiling.members]


def tiling_local(tiling: Tiling) -> Tiling:
    """Rewrite a pair-keyed tiling to positional member indices."""
    return Tiling(
        members=list(range(len(tiling.members))),
        starts=list(tiling.starts),
        held_lengths=list(tiling.held_lengths),
    )


def _tiling_evidence(cycle: Sequence[Channel], tiling: Tiling) -> dict[str, Any]:
    return {
        "cycle": list(cycle),
        "members": [f"{s}->{d}" for s, d in tiling.members],
        "starts": list(tiling.starts),
        "held_lengths": list(tiling.held_lengths),
    }


def algorithm_certificate(
    scan: PropertyScan,
    cdg: nx.DiGraph,
    cycles: CycleEnumeration,
    *,
    max_probe_cycles: int = 32,
    max_tilings: int = 256,
) -> Certificate | None:
    """Static verdict for a whole routing algorithm, or ``None``.

    Acyclic CDG yields DEADLOCK_FREE (with the Dally--Seitz numbering as
    evidence); otherwise the enumerated cycles are probed for any
    reachable-deadlock certificate.  A truncated cycle enumeration can
    still certify REACHABLE_DEADLOCK (existence needs one good cycle) and
    never weakens DEADLOCK_FREE (acyclicity is decided exactly).
    """
    if is_acyclic(cdg):
        from repro.cdg.numbering import dally_seitz_numbering

        numbering = dally_seitz_numbering(cdg)
        return Certificate(
            code="CRT001",
            verdict=DEADLOCK_FREE,
            rationale=(
                "channel dependency graph is acyclic: deadlock-free by "
                "Dally-Seitz, witnessed by a strictly increasing numbering"
            ),
            evidence={
                "channels": cdg.number_of_nodes(),
                "dependencies": cdg.number_of_edges(),
                "numbering": {ch.short(): i for ch, i in numbering.items()},
            },
        )
    for cycle in list(cycles)[:max_probe_cycles]:
        cert = cycle_certificate(
            scan.alg, cycle, scan=scan, cdg=cdg, max_tilings=max_tilings
        )
        if cert is not None:
            return cert
    return None
