"""The lint rule registry and the built-in rule catalogue.

Each :class:`Rule` has a stable code (``TOP``/``RTE``/``PRP``/``CDG``/``CRT``
families), a paper reference, and a check function over a
:class:`~repro.lint.engine.LintContext`.  Rules are pure inspections: they
never run the reachability search.  See ``docs/LINT.md`` for the catalogue
with per-rule paper citations.

Severity conventions: ``error`` means the target is malformed (broken
routes, duplicate VCs) -- the lint CLI exits non-zero; ``warning`` flags
analysis-degrading conditions (truncated cycle enumeration, source-only
nodes); ``info`` records structural facts and certificates.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable

from repro.lint.diagnostics import DEADLOCK_FREE, REACHABLE_DEADLOCK, Diagnostic

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.lint.engine import LintContext

#: evidence lists are capped so a pathological target cannot bloat reports
EVIDENCE_CAP = 12


@dataclass(frozen=True)
class Rule:
    """One registered lint rule."""

    code: str
    title: str
    severity: str
    paper_ref: str
    check: Callable[["LintContext"], list[Diagnostic]] = field(compare=False)
    #: certificate rules are mutually exclusive: the engine stops after the
    #: first one that fires
    certificate: bool = False


_RULES: dict[str, Rule] = {}


def register_rule(rule: Rule) -> Rule:
    if rule.code in _RULES:
        raise ValueError(f"duplicate rule code {rule.code!r}")
    _RULES[rule.code] = rule
    return rule


def rule(
    code: str, title: str, *, severity: str, paper_ref: str, certificate: bool = False
) -> Callable[[Callable[["LintContext"], list[Diagnostic]]], Callable]:
    def deco(fn: Callable[["LintContext"], list[Diagnostic]]) -> Callable:
        register_rule(
            Rule(
                code=code,
                title=title,
                severity=severity,
                paper_ref=paper_ref,
                check=fn,
                certificate=certificate,
            )
        )
        return fn

    return deco


def all_rules() -> list[Rule]:
    """Registered rules, in registration (execution) order."""
    return list(_RULES.values())


def get_rule(code: str) -> Rule:
    try:
        return _RULES[code]
    except KeyError:
        raise KeyError(
            f"unknown lint rule {code!r}; known: {', '.join(sorted(_RULES))}"
        ) from None


def _cap(items: list[Any]) -> list[Any]:
    return items[:EVIDENCE_CAP]


# ----------------------------------------------------------------------
# TOP: topology well-formedness
# ----------------------------------------------------------------------
@rule(
    "TOP001",
    "dangling node (no incoming or no outgoing channels)",
    severity="warning",
    paper_ref="Definition 1",
)
def _top_dangling(ctx: "LintContext") -> list[Diagnostic]:
    net = ctx.network
    source_only = [n for n in net.nodes if not net.channels_in(n)]
    sink_only = [n for n in net.nodes if not net.channels_out(n)]
    out: list[Diagnostic] = []
    if source_only or sink_only:
        out.append(
            Diagnostic(
                code="TOP001",
                severity="warning",
                message=(
                    f"{len(source_only)} source-only and {len(sink_only)} sink-only "
                    "node(s): messages cannot transit them (figure constructions "
                    "do this deliberately; real topologies should not)"
                ),
                evidence={
                    "source_only": _cap(source_only),
                    "sink_only": _cap(sink_only),
                },
            )
        )
    return out


@rule(
    "TOP002",
    "duplicate virtual channel on one physical link",
    severity="error",
    paper_ref="Definition 1 (channels as distinct resources)",
)
def _top_duplicate_vc(ctx: "LintContext") -> list[Diagnostic]:
    seen: dict[tuple, int] = {}
    dups: list[dict[str, Any]] = []
    for ch in ctx.network.channels:
        key = (ch.src, ch.dst, ch.vc)
        if key in seen:
            dups.append({"first": seen[key], "second": ch.cid, "link": f"{ch.src}->{ch.dst}", "vc": ch.vc})
        else:
            seen[key] = ch.cid
    if not dups:
        return []
    return [
        Diagnostic(
            code="TOP002",
            severity="error",
            message=f"{len(dups)} duplicate VC assignment(s) on physical links (builder bug)",
            evidence={"duplicates": _cap(dups)},
        )
    ]


@rule(
    "TOP003",
    "network is not strongly connected",
    severity="info",
    paper_ref="Definition 1",
)
def _top_strong(ctx: "LintContext") -> list[Diagnostic]:
    import networkx as nx

    g = ctx.network.node_digraph()
    if ctx.network.num_nodes == 0 or nx.is_strongly_connected(g):
        return []
    comps = sorted(nx.strongly_connected_components(g), key=len, reverse=True)
    return [
        Diagnostic(
            code="TOP003",
            severity="info",
            message=(
                f"not strongly connected: {len(comps)} components, largest "
                f"{len(comps[0])} of {ctx.network.num_nodes} nodes (Definition 1 "
                "asks for strong connectivity; figure constructions relax it)"
            ),
            evidence={"component_sizes": _cap([len(c) for c in comps])},
        )
    ]


# ----------------------------------------------------------------------
# RTE: routing table / function well-formedness
# ----------------------------------------------------------------------
@rule(
    "RTE001",
    "undefined route in the checked domain",
    severity="error",
    paper_ref="Definitions 2-3",
)
def _rte_undefined(ctx: "LintContext") -> list[Diagnostic]:
    bad = [
        {"pair": pair, "error": str(err)}
        for pair, err in ctx.route_errors().items()
        if err.kind == "undefined"
    ]
    if not bad:
        return []
    return [
        Diagnostic(
            code="RTE001",
            severity="error",
            message=f"{len(bad)} pair(s) in the domain have no defined route",
            evidence={"pairs": _cap(bad)},
        )
    ]


@rule(
    "RTE002",
    "broken route (divergent, inconsistent or channel-revisiting)",
    severity="error",
    paper_ref="Definitions 2-3 (oblivious routing must terminate)",
)
def _rte_broken(ctx: "LintContext") -> list[Diagnostic]:
    bad = [
        {"pair": pair, "kind": err.kind, "error": str(err)}
        for pair, err in ctx.route_errors().items()
        if err.kind != "undefined"
    ]
    if not bad:
        return []
    return [
        Diagnostic(
            code="RTE002",
            severity="error",
            message=f"{len(bad)} route(s) are structurally broken (would loop or diverge)",
            evidence={"pairs": _cap(bad)},
        )
    ]


@rule(
    "RTE003",
    "nonminimal routes (minimality slack)",
    severity="info",
    paper_ref="Theorem 3 hypothesis",
)
def _rte_nonminimal(ctx: "LintContext") -> list[Diagnostic]:
    scan = ctx.scan
    spl = ctx.network.shortest_path_lengths()
    slack = {
        pair: len(path) - spl[pair[0]][pair[1]]
        for pair, path in scan.paths.items()
        if path is not None
    }
    nonmin = {pair: s for pair, s in slack.items() if s > 0}
    if not nonmin:
        return []
    worst = sorted(nonmin.items(), key=lambda kv: -kv[1])
    return [
        Diagnostic(
            code="RTE003",
            severity="info",
            message=(
                f"{len(nonmin)} of {len(slack)} routes are nonminimal "
                f"(max slack {worst[0][1]} hops); Theorem 3's reachability "
                "guarantee requires minimal routing"
            ),
            evidence={
                "nonminimal_pairs": len(nonmin),
                "max_slack": worst[0][1],
                "worst": _cap([{"pair": p, "slack": s} for p, s in worst]),
            },
        )
    ]


# ----------------------------------------------------------------------
# PRP: structural properties (Definitions 7-9, Corollary 1 hypothesis)
# ----------------------------------------------------------------------
def _closure_diag(ctx: "LintContext", code: str, kind: str, definition: str) -> list[Diagnostic]:
    violations = ctx.scan.closure_violations(kind)
    if not violations:
        return []
    return [
        Diagnostic(
            code=code,
            severity="info",
            message=(
                f"not {kind}-closed ({definition}): {len(violations)} violating "
                "(source, destination, intermediate) triple(s)"
            ),
            evidence={
                "count": len(violations),
                "violations": _cap(
                    [
                        {"pair": pair, "via": w, "reason": reason}
                        for pair, w, reason in violations
                    ]
                ),
            },
        )
    ]


@rule(
    "PRP001",
    "prefix-closure violations",
    severity="info",
    paper_ref="Definition 7",
)
def _prp_prefix(ctx: "LintContext") -> list[Diagnostic]:
    return _closure_diag(ctx, "PRP001", "prefix", "Definition 7")


@rule(
    "PRP002",
    "suffix-closure violations",
    severity="info",
    paper_ref="Definition 8 / Corollary 2",
)
def _prp_suffix(ctx: "LintContext") -> list[Diagnostic]:
    return _closure_diag(ctx, "PRP002", "suffix", "Definition 8")


@rule(
    "PRP003",
    "routes revisiting a node",
    severity="info",
    paper_ref="Definition 9 (coherence)",
)
def _prp_revisit(ctx: "LintContext") -> list[Diagnostic]:
    bad = ctx.scan.node_revisit_violations()
    if not bad:
        return []
    return [
        Diagnostic(
            code="PRP003",
            severity="info",
            message=(
                f"{len(bad)} route(s) visit a node twice (or are undefined), "
                "breaking the coherence requirement"
            ),
            evidence={"pairs": _cap(bad)},
        )
    ]


@rule(
    "PRP004",
    "input-channel dependence (not of N x N -> C form)",
    severity="info",
    paper_ref="Corollary 1 hypothesis",
)
def _prp_ici(ctx: "LintContext") -> list[Diagnostic]:
    conflicts = ctx.scan.ici_conflicts()
    if not conflicts:
        return []
    return [
        Diagnostic(
            code="PRP004",
            severity="info",
            message=(
                f"routing depends on the input channel at {len(conflicts)} "
                "(node, destination) point(s): not expressible as R: N x N -> C"
            ),
            evidence={
                "conflicts": _cap(
                    [
                        {"node": n, "dest": d, "outputs": outs}
                        for (n, d), outs in conflicts.items()
                    ]
                )
            },
        )
    ]


# ----------------------------------------------------------------------
# CDG: dependency-graph structure
# ----------------------------------------------------------------------
@rule(
    "CDG001",
    "cyclic channel dependency graph",
    severity="info",
    paper_ref="Dally-Seitz; Section 2",
)
def _cdg_cyclic(ctx: "LintContext") -> list[Diagnostic]:
    if ctx.cdg_acyclic:
        return []
    cycles = ctx.cycles
    shortest = min(cycles.cycles, key=len) if cycles.cycles else None
    return [
        Diagnostic(
            code="CDG001",
            severity="info",
            message=(
                f"CDG has {len(cycles)}{'+' if cycles.truncated else ''} simple "
                "cycle(s): Dally-Seitz does not apply; deadlock freedom, if any, "
                "must come from unreachability"
            ),
            evidence={
                "num_cycles": len(cycles),
                "truncated": cycles.truncated,
                "shortest_cycle": list(shortest) if shortest is not None else None,
            },
        )
    ]


@rule(
    "CDG002",
    "cycle enumeration truncated at the cap",
    severity="warning",
    paper_ref="analysis soundness (no silent truncation)",
)
def _cdg_truncated(ctx: "LintContext") -> list[Diagnostic]:
    if not ctx.cycles.truncated:
        return []
    return [
        Diagnostic(
            code="CDG002",
            severity="warning",
            message=(
                f"cycle enumeration stopped at max_cycles={ctx.max_cycles}: "
                "cycle counts and per-cycle conclusions cover only the "
                "enumerated prefix"
            ),
            evidence={"max_cycles": ctx.max_cycles, "enumerated": len(ctx.cycles)},
        )
    ]


# ----------------------------------------------------------------------
# CRT: certificates (mutually exclusive; engine stops at the first hit)
# ----------------------------------------------------------------------
def _certificate_diag(ctx: "LintContext", code: str) -> list[Diagnostic]:
    cert = ctx.certificate()
    if cert is None or cert.code != code:
        return []
    verdict = DEADLOCK_FREE if cert.verdict == DEADLOCK_FREE else REACHABLE_DEADLOCK
    evidence = dict(cert.evidence)
    if cert.messages:
        evidence["deadlock_messages"] = list(cert.messages)
    return [
        Diagnostic(
            code=code,
            severity="info",
            message=cert.rationale,
            evidence=evidence,
            certificate=verdict,
        )
    ]


@rule(
    "CRT001",
    "acyclic CDG: deadlock-free (Dally-Seitz numbering)",
    severity="info",
    paper_ref="Dally & Seitz 1987",
    certificate=True,
)
def _crt_acyclic(ctx: "LintContext") -> list[Diagnostic]:
    return _certificate_diag(ctx, "CRT001")


@rule(
    "CRT002",
    "N x N -> C routing with cyclic CDG: reachable deadlock",
    severity="info",
    paper_ref="Corollary 1",
    certificate=True,
)
def _crt_cor1(ctx: "LintContext") -> list[Diagnostic]:
    return _certificate_diag(ctx, "CRT002")


@rule(
    "CRT003",
    "suffix-closed routing with cyclic CDG: reachable deadlock",
    severity="info",
    paper_ref="Corollary 2",
    certificate=True,
)
def _crt_cor2(ctx: "LintContext") -> list[Diagnostic]:
    return _certificate_diag(ctx, "CRT003")


@rule(
    "CRT004",
    "coherent routing with cyclic CDG: reachable deadlock",
    severity="info",
    paper_ref="Corollary 3",
    certificate=True,
)
def _crt_cor3(ctx: "LintContext") -> list[Diagnostic]:
    return _certificate_diag(ctx, "CRT004")


@rule(
    "CRT005",
    "disjoint-approach cycle tiling: reachable deadlock",
    severity="info",
    paper_ref="Theorem 2 (constructive schedule)",
    certificate=True,
)
def _crt_disjoint(ctx: "LintContext") -> list[Diagnostic]:
    return _certificate_diag(ctx, "CRT005")


@rule(
    "CRT006",
    "minimal routing, single shared channel: reachable deadlock",
    severity="info",
    paper_ref="Theorem 3",
    certificate=True,
)
def _crt_thm3(ctx: "LintContext") -> list[Diagnostic]:
    return _certificate_diag(ctx, "CRT006")


@rule(
    "CRT007",
    "two messages, single shared channel: reachable deadlock",
    severity="info",
    paper_ref="Theorem 4",
    certificate=True,
)
def _crt_thm4(ctx: "LintContext") -> list[Diagnostic]:
    return _certificate_diag(ctx, "CRT007")


@rule(
    "CRT008",
    "connected acyclic escape subfunction: deadlock-free (Duato)",
    severity="info",
    paper_ref="Duato '91/'93; Section 7 (adaptive routing)",
    certificate=True,
)
def _crt_duato(ctx: "LintContext") -> list[Diagnostic]:
    return _certificate_diag(ctx, "CRT008")
