"""CDG construction for adaptive routing functions (Duato's setting).

For adaptive routing the dependency relation must consider *every*
candidate channel, and which (channel, destination) pairs actually occur
requires forward reachability from injection: channel ``c`` is usable
toward destination ``d`` iff some message can be routed onto ``c`` en route
to ``d``.  :func:`build_adaptive_cdg` computes that by BFS per destination.

:func:`duato_certificate` packages the sufficiency check the paper cites
(Duato '91/'93): the full adaptive CDG may be cyclic, but if a connected
escape subfunction's CDG is acyclic the algorithm is deadlock-free.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

import networkx as nx

from repro.cdg.analysis import is_acyclic
from repro.cdg.build import build_cdg
from repro.routing.adaptive import AdaptiveRoutingFunction
from repro.routing.base import INJECT, RoutingAlgorithm, RoutingError
from repro.topology.channels import Channel


def build_adaptive_cdg(fn: AdaptiveRoutingFunction) -> nx.DiGraph:
    """The extended channel dependency graph of an adaptive function.

    Vertices are channels usable by some (source, destination) pair; edge
    ``c1 -> c2`` whenever a message heading to some destination may use
    ``c2`` immediately after ``c1``.
    """
    net = fn.network
    g = nx.DiGraph(name=f"acdg({fn.name()})")
    for dest in net.nodes:
        frontier: deque = deque()
        seen: set[int] = set()
        for src in net.nodes:
            if src == dest:
                continue
            try:
                for c in fn.candidates(INJECT, src, dest):
                    if c.cid not in seen:
                        seen.add(c.cid)
                        frontier.append(c)
                        g.add_node(c)
            except RoutingError:
                continue
        while frontier:
            c1 = frontier.popleft()
            if c1.dst == dest:
                continue
            try:
                nxt = fn.candidates(c1, c1.dst, dest)
            except RoutingError:
                continue
            for c2 in nxt:
                if c2 not in g:
                    g.add_node(c2)
                g.add_edge(c1, c2)
                if c2.cid not in seen:
                    seen.add(c2.cid)
                    frontier.append(c2)
    return g


@dataclass
class DuatoCertificate:
    """Outcome of Duato's sufficiency check for one adaptive function."""

    full_cdg_acyclic: bool
    escape_cdg_acyclic: bool
    escape_connected: bool
    #: channels of the escape sub-CDG -- the resource set the certificate
    #: reasons about
    escape_channels: tuple[Channel, ...] = ()
    #: a topological order of the escape sub-CDG when acyclic: the
    #: constructive content of the certificate (escape channels always
    #: drain in this order, so a blocked message can eventually escape)
    escape_order: tuple[Channel, ...] = ()

    @property
    def deadlock_free(self) -> bool:
        """Duato's sufficient condition holds."""
        return self.escape_cdg_acyclic and self.escape_connected


def duato_certificate(fn: AdaptiveRoutingFunction) -> DuatoCertificate:
    """Evaluate Duato's condition: acyclic, connected escape subfunction.

    Requires ``fn`` to expose ``escape_function()`` (as
    :func:`repro.routing.adaptive.duato_escape_mesh` does).
    """
    escape_fn = getattr(fn, "escape_function", None)
    if escape_fn is None:
        raise ValueError(f"{fn.name()} exposes no escape subfunction")
    escape = escape_fn()
    alg = RoutingAlgorithm(escape)
    from repro.routing.properties import is_connected

    escape_cdg = build_cdg(alg)
    full = build_adaptive_cdg(fn)
    escape_acyclic = is_acyclic(escape_cdg)
    return DuatoCertificate(
        full_cdg_acyclic=is_acyclic(full),
        escape_cdg_acyclic=escape_acyclic,
        escape_connected=is_connected(alg),
        escape_channels=tuple(sorted(escape_cdg.nodes, key=lambda c: c.cid)),
        escape_order=(
            tuple(nx.topological_sort(escape_cdg)) if escape_acyclic else ()
        ),
    )
