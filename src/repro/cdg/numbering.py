"""Dally--Seitz channel numbering certificates.

Dally and Seitz prove deadlock freedom by exhibiting a numbering of the
channels such that every routing step moves to a strictly greater-numbered
channel.  For an acyclic CDG such a numbering always exists (any topological
order); :func:`dally_seitz_numbering` produces one and
:func:`verify_numbering` checks an arbitrary candidate -- the certificate
form used in the corollary experiments and tests.
"""

from __future__ import annotations

from collections.abc import Mapping

import networkx as nx

from repro.topology.channels import Channel


def dally_seitz_numbering(cdg: nx.DiGraph) -> dict[Channel, int]:
    """A strictly-increasing channel numbering for an acyclic CDG.

    Raises ``ValueError`` when the CDG has a cycle (no such numbering can
    exist -- which for the paper's Figure 1 network is exactly the point:
    deadlock freedom there cannot be certified this way).
    """
    if not nx.is_directed_acyclic_graph(cdg):
        raise ValueError(
            "CDG is cyclic: no Dally-Seitz numbering exists "
            "(deadlock freedom, if any, must come from unreachability)"
        )
    return {ch: i for i, ch in enumerate(nx.topological_sort(cdg))}


def verify_numbering(cdg: nx.DiGraph, numbering: Mapping[Channel, int]) -> bool:
    """True iff ``numbering`` is strictly increasing along every dependency."""
    for c1, c2 in cdg.edges():
        if c1 not in numbering or c2 not in numbering:
            return False
        if numbering[c1] >= numbering[c2]:
            return False
    return True
