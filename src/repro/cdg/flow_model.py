"""The Lin--McKinley--Ni message flow model (paper Section 2).

Lin, McKinley and Ni prove deadlock freedom by showing no channel can be
held forever: *sink* channels (those that only ever deliver messages to
their final destination) are trivially *deadlock-immune*; a channel all of
whose successor channels (for every destination routed through it) are
already immune is immune too; if induction reaches every channel, the
algorithm is deadlock-free.

The paper's Section 2 observes the technique stalls on unreachable-cycle
algorithms: "The channels in an unreachable configuration form a cycle.
Hence, there seems to be no starting point from which to deduce that these
are deadlock-immune channels."  :func:`deadlock_immune_channels` implements
the induction so the experiment can show exactly that: it certifies
dimension-order meshes completely, but leaves the Figure 1 ring channels
uncertified even though Theorem 1 proves the algorithm deadlock-free --
a concrete demonstration that the flow model is sufficient-only.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Sequence

import networkx as nx

from repro.cdg.build import build_cdg
from repro.routing.base import RoutingAlgorithm
from repro.topology.channels import Channel, NodeId

Pair = tuple[NodeId, NodeId]


@dataclass
class FlowModelResult:
    """Outcome of the deadlock-immunity induction."""

    immune: set[Channel] = field(default_factory=set)
    uncertified: set[Channel] = field(default_factory=set)
    rounds: int = 0

    @property
    def certifies_deadlock_freedom(self) -> bool:
        """True iff the induction reached every used channel."""
        return not self.uncertified

    def summary(self) -> dict[str, object]:
        return {
            "channels": len(self.immune) + len(self.uncertified),
            "immune": len(self.immune),
            "uncertified": len(self.uncertified),
            "rounds": self.rounds,
            "certified": self.certifies_deadlock_freedom,
        }


def deadlock_immune_channels(
    alg: RoutingAlgorithm,
    pairs: Sequence[Pair] | None = None,
) -> FlowModelResult:
    """Run the Lin--McKinley--Ni induction on an oblivious algorithm.

    Works on the CDG restricted to the given source--destination domain.
    A channel with no outgoing dependency is a sink (every message using it
    is delivered from it); a channel becomes immune when *all* its CDG
    successors are immune.  Returns which channels the induction certifies
    and which it cannot -- for cyclic CDGs the cycle (and everything that
    can only drain through it) stays uncertified.
    """
    cdg = build_cdg(alg, pairs)
    immune: set[Channel] = set()
    remaining: set[Channel] = set(cdg.nodes)
    rounds = 0
    changed = True
    while changed:
        changed = False
        rounds += 1
        for ch in list(remaining):
            succs = list(cdg.successors(ch))
            if all(s in immune for s in succs):
                immune.add(ch)
                remaining.discard(ch)
                changed = True
    return FlowModelResult(immune=immune, uncertified=remaining, rounds=rounds)


def certification_gap(alg: RoutingAlgorithm, pairs: Sequence[Pair] | None = None) -> set[Channel]:
    """Channels the flow model cannot certify (empty iff CDG is acyclic).

    Equivalent characterisation: a channel is uncertifiable iff it can
    reach a CDG cycle; exposed for tests as a cross-check of the induction.
    """
    cdg = build_cdg(alg, pairs)
    on_cycle: set[Channel] = set()
    for scc in nx.strongly_connected_components(cdg):
        if len(scc) > 1 or any(cdg.has_edge(c, c) for c in scc):
            on_cycle.update(scc)
    gap: set[Channel] = set()
    for ch in cdg.nodes:
        if ch in on_cycle or any(
            nx.has_path(cdg, ch, target) for target in on_cycle
        ):
            gap.add(ch)
    return gap
