"""CDG cycle analysis.

The Dally--Seitz test (:func:`is_acyclic`) plus cycle enumeration.  Cycle
enumeration on dense CDGs can explode combinatorially, so
:func:`find_cycles` takes a hard cap and reports whether it was hit -- a
truncated enumeration must never be silently presented as exhaustive.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Sequence

import networkx as nx

from repro.topology.channels import Channel


def is_acyclic(cdg: nx.DiGraph) -> bool:
    """Dally--Seitz sufficiency check: acyclic CDG implies deadlock freedom."""
    return nx.is_directed_acyclic_graph(cdg)


@dataclass
class CycleEnumeration:
    """Result of a (possibly capped) simple-cycle enumeration."""

    cycles: list[tuple[Channel, ...]]
    truncated: bool

    def __len__(self) -> int:
        return len(self.cycles)

    def __iter__(self):
        return iter(self.cycles)


def find_cycles(cdg: nx.DiGraph, *, max_cycles: int = 10_000) -> CycleEnumeration:
    """Enumerate simple cycles of the CDG (each as a channel tuple).

    Stops after ``max_cycles`` and sets ``truncated`` so callers can refuse
    to draw exhaustiveness conclusions from a partial enumeration.
    """
    cycles: list[tuple[Channel, ...]] = []
    truncated = False
    for cyc in nx.simple_cycles(cdg):
        cycles.append(tuple(cyc))
        if len(cycles) >= max_cycles:
            truncated = True
            break
    return CycleEnumeration(cycles=cycles, truncated=truncated)


def cycle_channels(cycle: Sequence[Channel]) -> list[tuple[Channel, Channel]]:
    """The dependency edges of a cycle, closing back to the start."""
    n = len(cycle)
    return [(cycle[i], cycle[(i + 1) % n]) for i in range(n)]


def cycles_through_channel(
    cdg: nx.DiGraph, channel: Channel, *, max_cycles: int = 10_000
) -> CycleEnumeration:
    """Simple cycles that include ``channel``.

    Returns a :class:`CycleEnumeration` (len/iter-compatible with the old
    plain list) so a hit of the ``max_cycles`` cap is reported instead of
    being silently dropped on the filter.
    """
    enum = find_cycles(cdg, max_cycles=max_cycles)
    return CycleEnumeration(
        cycles=[c for c in enum.cycles if channel in c], truncated=enum.truncated
    )


def cycle_summary(cdg: nx.DiGraph, *, max_cycles: int = 10_000) -> dict[str, object]:
    """Compact report used by experiment tables."""
    enum = find_cycles(cdg, max_cycles=max_cycles)
    lengths = sorted(len(c) for c in enum.cycles)
    return {
        "channels": cdg.number_of_nodes(),
        "dependencies": cdg.number_of_edges(),
        "acyclic": is_acyclic(cdg),
        "num_cycles": len(enum.cycles),
        "cycle_lengths": lengths,
        "enumeration_truncated": enum.truncated,
    }
