"""Channel dependency graph (CDG) construction and analysis.

Dally--Seitz: the CDG has a vertex per channel and a directed edge
``c1 -> c2`` whenever some message is permitted to use ``c2`` immediately
after ``c1``.  An acyclic CDG is *sufficient* for deadlock freedom; the
paper's whole point is that it is not *necessary*, even for oblivious
routing.

Public API
----------
:func:`build_cdg`              -- CDG from (network, routing algorithm).
:class:`DependencyInfo`        -- which (src, dst) pairs induce each edge.
:func:`is_acyclic`             -- Dally--Seitz sufficiency test.
:func:`find_cycles`            -- enumerate simple cycles (capped).
:func:`cycle_channels`         -- edge list of a cycle.
:func:`dally_seitz_numbering`  -- strictly-increasing channel numbering
                                  certificate for acyclic CDGs.
"""

from repro.cdg.build import build_cdg, DependencyInfo
from repro.cdg.analysis import (
    is_acyclic,
    find_cycles,
    cycle_channels,
    cycle_summary,
    cycles_through_channel,
)
from repro.cdg.numbering import dally_seitz_numbering, verify_numbering
from repro.cdg.adaptive import build_adaptive_cdg, duato_certificate, DuatoCertificate
from repro.cdg.flow_model import deadlock_immune_channels, FlowModelResult

__all__ = [
    "build_cdg",
    "DependencyInfo",
    "is_acyclic",
    "find_cycles",
    "cycle_channels",
    "cycle_summary",
    "cycles_through_channel",
    "dally_seitz_numbering",
    "verify_numbering",
    "build_adaptive_cdg",
    "duato_certificate",
    "DuatoCertificate",
    "deadlock_immune_channels",
    "FlowModelResult",
]
