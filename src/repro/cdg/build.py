"""CDG construction from an oblivious routing algorithm.

For oblivious routing the dependency relation is exactly the set of
consecutive channel pairs over all defined source--destination paths
(Definition 2 applied pointwise).  We record, per dependency edge, the set
of (source, destination) pairs that induce it -- the unreachable-configuration
analysis needs to know *which messages* realise each dependency, not merely
that it exists (the "static dependencies vs dynamic interactions" distinction
the paper draws in Section 2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Sequence

import networkx as nx

from repro.routing.base import RoutingAlgorithm
from repro.topology.channels import Channel, NodeId

Pair = tuple[NodeId, NodeId]


@dataclass
class DependencyInfo:
    """Metadata attached to one CDG edge ``c1 -> c2``."""

    pairs: set[Pair] = field(default_factory=set)

    def add(self, pair: Pair) -> None:
        self.pairs.add(pair)

    def __len__(self) -> int:
        return len(self.pairs)


def build_cdg(
    alg: RoutingAlgorithm,
    pairs: Sequence[Pair] | None = None,
) -> nx.DiGraph:
    """Build the channel dependency graph of ``alg``.

    Parameters
    ----------
    alg:
        The routing algorithm (paths are materialised through it).
    pairs:
        Source--destination domain.  Defaults to the algorithm's defined
        pairs (table routing) or all ordered node pairs.

    Returns
    -------
    networkx.DiGraph
        Vertices are :class:`~repro.topology.channels.Channel` objects.  Every
        channel used by at least one path appears as a vertex (including
        sink channels with no outgoing dependency).  Edge attribute ``info``
        is a :class:`DependencyInfo` listing the inducing pairs.
    """
    from repro.routing.properties import _domain  # shared domain logic

    g = nx.DiGraph(name=f"cdg({alg.fn.name()})")
    for s, d in _domain(alg, pairs):
        path = alg.try_path(s, d)
        if path is None:
            continue
        for ch in path:
            if ch not in g:
                g.add_node(ch)
        for a, b in zip(path, path[1:]):
            data = g.get_edge_data(a, b)
            if data is None:
                info = DependencyInfo()
                g.add_edge(a, b, info=info)
            else:
                info = data["info"]
            info.add((s, d))
    return g


def edge_pairs(g: nx.DiGraph, c1: Channel, c2: Channel) -> set[Pair]:
    """The (source, destination) pairs inducing dependency ``c1 -> c2``."""
    data = g.get_edge_data(c1, c2)
    if data is None:
        raise KeyError(f"no dependency {c1!r} -> {c2!r}")
    return set(data["info"].pairs)
