"""Ablations over the design choices DESIGN.md section 6 calls out.

* arbitration policy: whether a deterministic Figure 2 deadlock forms can
  depend on who wins ties -- the adversarial policy finds it, FIFO may not;
* flit buffer depth: the Figure 1 timing argument assumes depth 1; deeper
  buffers change latency but not Theorem 1's verdict (the checker models
  depth 1, the worst case per Section 4);
* message length: minimum lengths are the adversary's best choice -- longer
  cycle messages never turn Figure 1 into a deadlock.
"""


from benchmarks.conftest import emit
from repro.analysis import SystemSpec, search_deadlock
from repro.analysis.schedules import witness_to_schedule
from repro.core.two_message import build_two_message_config
from repro.experiments import render_table
from repro.sim import (
    AdversarialArbitration,
    FifoArbitration,
    SimConfig,
    Simulator,
)


def test_ablation_arbitration_policy():
    """Replay the Figure 2 witness schedule under different arbitration."""
    cfg = build_two_message_config()
    res = search_deadlock(SystemSpec.uniform(cfg.checker_messages()))
    sched = witness_to_schedule(res.witness, src_dst=cfg.message_pairs)
    rows = []
    for name, arb in [
        ("scripted(adversarial)", None),  # handled by replay elsewhere
        ("fifo", FifoArbitration()),
        ("adversarial(M2,M1)", AdversarialArbitration(prefer=["M2", "M1"])),
    ]:
        if arb is None:
            continue
        sim = Simulator(
            cfg.network,
            cfg.routing,
            sched.specs,
            config=SimConfig(max_cycles=5000),
            arbitration=arb,
            stalls=sched.stalls,
        )
        out = sim.run()
        rows.append({"arbitration": name, "deadlock": out.deadlocked})
    emit(render_table(rows, title="Ablation: arbitration policy on the Fig. 2 schedule"))
    # at least one policy reproduces the deadlock deterministically
    assert any(r["deadlock"] for r in rows)


def test_ablation_buffer_depth():
    """Deeper buffers on the Figure 2 schedule change when, not whether."""
    cfg = build_two_message_config()
    res = search_deadlock(SystemSpec.uniform(cfg.checker_messages()))
    sched = witness_to_schedule(res.witness, src_dst=cfg.message_pairs)
    rows = []
    for depth in (1, 2, 4):
        # lengths must grow with buffer depth to keep holding the segment
        specs = [
            type(s)(
                mid=s.mid,
                src=s.src,
                dst=s.dst,
                length=s.length * depth,
                inject_time=s.inject_time,
                tag=s.tag,
            )
            for s in sched.specs
        ]
        sim = Simulator(
            cfg.network,
            cfg.routing,
            specs,
            config=SimConfig(max_cycles=5000, buffer_depth=depth),
            arbitration=AdversarialArbitration(prefer=["M2", "M1"]),
            stalls=sched.stalls,
        )
        out = sim.run()
        rows.append({"buffer depth": depth, "deadlock": out.deadlocked})
    emit(render_table(rows, title="Ablation: flit buffer depth (Fig. 2 schedule)"))
    assert rows[0]["deadlock"]


def test_ablation_message_length_on_fig1(benchmark):
    """Longer cycle messages never make Figure 1 deadlock (Theorem 1).

    The length sweep goes through the campaign runner (the same tasks the
    ``paper-battery`` spec issues), exercising the orchestration path the
    CLI sweeps use.
    """
    from repro.campaign import CampaignTask, run_campaign

    rows = []

    def sweep():
        tasks = [
            CampaignTask.make("reachability", "fig1", expect="unreachable")
        ] + [
            CampaignTask.make(
                "reachability", "fig1", extra_length=extra, expect="unreachable"
            )
            for extra in (1, 2)
        ]
        results, summary = run_campaign(tasks)
        assert summary.all_expected
        for task, res in zip(tasks, results):
            rows.append(
                {
                    "length": f"min+{task.params_dict().get('extra_length', 0)}",
                    "deadlock": res.verdict == "deadlock",
                    "states": res.detail["states_explored"],
                }
            )
        return rows

    benchmark.pedantic(sweep, rounds=1, iterations=1)
    emit(render_table(rows, title="Ablation: message length on Figure 1"))
    assert all(not r["deadlock"] for r in rows)
