"""Search-core benchmark payloads: one measured scenario per process.

Unlike the pytest-benchmark modules in this directory (which regenerate
paper artifacts), this file is a plain script used by
``scripts/perf_report.py`` to A/B the table-driven search engine against
the reference implementation.  Each invocation measures exactly one
scenario in a *fresh* interpreter::

    PYTHONPATH=src REPRO_SEARCH_ENGINE=fast \
        python benchmarks/bench_search_core.py --scenario thm1-five

and prints a single JSON object: ``{"scenario", "engine", "wall_s",
"cpu_s", "states", ...}``.  Fresh processes keep the measurements honest:
no warm engine tables, no memo carry-over, no allocator reuse between the
engines under comparison.  Each scenario is a *setup* (imports, network
and message construction -- identical for both engines, untimed) plus a
*run* (everything the engine switch affects -- timed, and for the fast
engine that includes building the
:class:`~repro.analysis.fastpath.FastEngine` transition tables from
scratch).  ``REPRO_SEARCH_ENGINE`` selects the engine because that is the
same switch real runs use.

Scenarios (all search-bound; the flit-level simulator is out of scope):

``fig1-sync``      Figure 1 / Theorem 1 four-message verdict search.
``thm1-five``      the Theorem 1 five-message symmetry-reduction search
                   (Figure 1 plus one interposed copy).
``fig1-copies``    six messages (two copies) -- the largest Fig. 1 search.
``fig1-b1``        budget 1: the deadlock-positive early-exit search.
``fig1-delay``     the two-phase ``min_delay_to_deadlock`` sweep on Fig. 1.
``gen2-delay``     the Section 6 ``Gen(2)`` delay sweep (the paper
                   battery's dominant search task).
``battery-search`` every search-bound task (reachability / classify /
                   min_delay) of the ``paper-battery`` campaign spec, run
                   cold through :func:`repro.campaign.tasks.execute_task`.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from typing import Any, Callable


def _fig1_messages():
    from repro.core.cyclic_dependency import build_cyclic_dependency_network

    return build_cyclic_dependency_network().checker_messages()


def _fig1_spec(extra_copies: int = 0, budget: int = 0):
    from repro.analysis.state import CheckerMessage, SystemSpec

    msgs = list(_fig1_messages())
    donors = [1, 3]  # M2 and M4, the copies Theorem 1's proof interposes
    for c in range(extra_copies):
        src = msgs[donors[c % len(donors)]]
        msgs.append(CheckerMessage(src.path, src.length, f"copy{c}"))
    return SystemSpec.uniform(msgs, budget=budget)


def _setup_verdict_search(extra_copies: int = 0, budget: int = 0):
    """Build the spec eagerly; return a closure that only searches."""
    from repro.analysis.reachability import search_deadlock

    spec = _fig1_spec(extra_copies=extra_copies, budget=budget)

    def run() -> dict[str, Any]:
        res = search_deadlock(spec, find_witness=False, max_states=40_000_000)
        return {"states": res.states_explored, "deadlock": res.deadlock_reachable}

    return run


def setup_fig1_sync():
    return _setup_verdict_search()


def setup_thm1_five():
    return _setup_verdict_search(extra_copies=1)


def setup_fig1_copies():
    return _setup_verdict_search(extra_copies=2)


def setup_fig1_b1():
    return _setup_verdict_search(budget=1)


def setup_fig1_delay():
    from repro.analysis.delay import min_delay_to_deadlock

    msgs = _fig1_messages()

    def run() -> dict[str, Any]:
        res = min_delay_to_deadlock(msgs, max_delay=3)
        states = sum(r.states_explored for r in res.results.values())
        return {"states": states, "min_delay": res.min_delay}

    return run


def setup_gen2_delay():
    from repro.analysis.delay import min_delay_to_deadlock
    from repro.core.generalized import generalized_messages

    msgs = generalized_messages(2)

    def run() -> dict[str, Any]:
        res = min_delay_to_deadlock(msgs, max_delay=8, max_states=8_000_000)
        states = sum(r.states_explored for r in res.results.values())
        return {"states": states, "min_delay": res.min_delay}

    return run


def setup_battery_search():
    from repro.campaign.specs import build_spec
    from repro.campaign.tasks import execute_task

    kinds = ("reachability", "classify", "min_delay")
    tasks = [t for t in build_spec("paper-battery") if t.kind in kinds]

    def run() -> dict[str, Any]:
        states = 0
        failures = []
        for task in tasks:
            result = execute_task(task)
            if not result.ok:
                failures.append(f"{result.name}: {result.error}")
            states += int(result.detail.get("states_explored", 0) or 0)
        return {"states": states, "tasks": len(tasks), "failures": failures}

    return run


SCENARIOS: dict[str, Callable[[], Callable[[], dict[str, Any]]]] = {
    "fig1-sync": setup_fig1_sync,
    "thm1-five": setup_thm1_five,
    "fig1-copies": setup_fig1_copies,
    "fig1-b1": setup_fig1_b1,
    "fig1-delay": setup_fig1_delay,
    "gen2-delay": setup_gen2_delay,
    "battery-search": setup_battery_search,
}


def _warm_kernel_backend() -> None:
    """JIT/compile the kernel backend on a toy spec, untimed.

    Backend compilation (the numba JIT, the disk-cached C build) is a
    one-time artifact cost, not per-search work; on a cold cache it would
    otherwise charge the kernel engine seconds of compiler time inside
    the measured window.  The toy spec shares nothing with any scenario,
    so the measured search still builds its own tables from scratch.
    """
    from repro.analysis.kernelpath import clear_caches, kernel_engine_for
    from repro.analysis.state import CheckerMessage, SystemSpec

    spec = SystemSpec(
        messages=(CheckerMessage(path=(0,), length=1, tag="warm"),),
        budgets=(0,),
    )
    kernel_engine_for(spec).search()
    clear_caches()  # drop the toy engine; the compiled backend persists


def measure(scenario: str) -> dict[str, Any]:
    """Set up, then run + time one scenario (call in a fresh process)."""
    payload = SCENARIOS[scenario]()  # untimed: imports + spec construction
    if os.environ.get("REPRO_SEARCH_ENGINE") in ("kernel", "auto"):
        _warm_kernel_backend()
    wall0 = time.perf_counter()
    cpu0 = time.process_time()
    detail = payload()
    cpu = time.process_time() - cpu0
    wall = time.perf_counter() - wall0
    out: dict[str, Any] = {
        "scenario": scenario,
        "engine": os.environ.get("REPRO_SEARCH_ENGINE", "fast"),
        "wall_s": round(wall, 4),
        "cpu_s": round(cpu, 4),
    }
    out.update(detail)
    states = out.get("states")
    if states:
        out["states_per_sec"] = round(states / wall) if wall > 0 else None
    return out


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scenario", required=True, choices=sorted(SCENARIOS))
    args = parser.parse_args(argv)
    result = measure(args.scenario)
    print(json.dumps(result))
    return 1 if result.get("failures") else 0


if __name__ == "__main__":
    sys.exit(main())
