"""E7 -- Section 7 extensions: beyond the paper's evaluated scope.

1. Four messages sharing a channel: the generalized unreachability
   predictor vs the exhaustive search (agreement rate reported; the
   predictor is a conjecture and its misses are printed, not hidden).
2. Multiple shared channels: the conclusion's claim that an unreachable
   configuration needs at least three messages on one shared channel --
   Figure 1 split 2+2 or 3+1 across two channels must deadlock, while the
   original 4-on-one split stays unreachable (covered by E1).
3. Adaptive context: Duato's certificate on the escape-channel mesh (full
   CDG cyclic, escape sub-CDG acyclic and connected).
"""

import pytest

from benchmarks.conftest import emit
from repro.cdg import duato_certificate
from repro.core.multi_message import run_four_message_sweep, run_split_shared_experiment
from repro.experiments import render_table
from repro.routing import duato_escape_mesh
from repro.topology import mesh


@pytest.fixture(scope="module")
def split_result():
    return run_split_shared_experiment()


def test_split_shared_claim(split_result):
    emit(render_table(split_result.rows, title="E7: Figure 1 split across shared channels"))
    assert split_result.claim_holds
    by_split = {r["split"]: r["classification"] for r in split_result.rows}
    assert by_split["4"] == "unreachable"
    assert by_split["2+2"] == "deadlock"
    assert by_split["3+1"] == "deadlock"


def test_four_message_predictor_agreement():
    sweep = run_four_message_sweep(samples=6)
    emit(
        f"E7: four-message predictor agrees with search on "
        f"{sweep.agree}/{sweep.total} configs "
        f"({sweep.unreachable_found} unreachable found)"
    )
    for d in sweep.disagreements:
        emit(f"  predictor miss: {d}")
    # the predictor must at least classify the Figure 1 point correctly
    assert sweep.total >= 1
    assert sweep.rate >= 0.8


def test_duato_certificate_shape():
    net = mesh((4, 4), vcs=2)
    cert = duato_certificate(duato_escape_mesh(net, 2))
    emit(
        "E7: Duato certificate -- full CDG acyclic: "
        f"{cert.full_cdg_acyclic}; escape acyclic: {cert.escape_cdg_acyclic}; "
        f"escape connected: {cert.escape_connected}"
    )
    assert not cert.full_cdg_acyclic
    assert cert.deadlock_free


def test_benchmark_split_shared(benchmark, split_result):
    emit(render_table(split_result.rows, title="E7: Figure 1 split across shared channels"))
    assert split_result.claim_holds
    by_split = {r["split"]: r["classification"] for r in split_result.rows}
    assert by_split == {"4": "unreachable", "3+1": "deadlock", "2+2": "deadlock"}

    def payload():
        from repro.analysis import SystemSpec, search_deadlock
        from repro.core.multi_message import split_shared_fig1

        c = split_shared_fig1((0, 1, 0, 1))
        res = search_deadlock(
            SystemSpec.uniform(c.checker_messages()), find_witness=False
        )
        assert res.deadlock_reachable

    benchmark.pedantic(payload, rounds=1, iterations=1)


def test_benchmark_four_message_sweep(benchmark):
    sweep = benchmark.pedantic(
        run_four_message_sweep, kwargs=dict(samples=5), rounds=1, iterations=1
    )
    emit(
        f"E7: four-message predictor agrees with search on "
        f"{sweep.agree}/{sweep.total} configs "
        f"({sweep.unreachable_found} unreachable found)"
    )
    for d in sweep.disagreements:
        emit(f"  predictor miss: {d}")
    assert sweep.rate >= 0.8


def test_benchmark_duato_certificate(benchmark):
    net = mesh((4, 4), vcs=2)

    def payload():
        cert = duato_certificate(duato_escape_mesh(net, 2))
        assert cert.deadlock_free and not cert.full_cdg_acyclic
        return cert

    cert = benchmark.pedantic(payload, rounds=1, iterations=1)
    emit(
        "E7: Duato certificate -- full CDG acyclic: "
        f"{cert.full_cdg_acyclic}; escape acyclic: {cert.escape_cdg_acyclic}; "
        f"escape connected: {cert.escape_connected}"
    )
