"""V2 -- substrate validation: CDG construction/analysis scaling."""

import pytest

from benchmarks.conftest import emit
from repro.cdg import build_cdg, dally_seitz_numbering, is_acyclic
from repro.routing import (
    RoutingAlgorithm,
    dateline_torus,
    dimension_order_mesh,
    ecube_hypercube,
)
from repro.topology import hypercube, mesh, torus


CASES = {
    "mesh6x6-dor": lambda: (mesh((6, 6)), lambda n: dimension_order_mesh(n, 2)),
    "torus5x5-dateline": lambda: (torus((5, 5), vcs=2), lambda n: dateline_torus(n, (5, 5))),
    "hcube5-ecube": lambda: (hypercube(5), lambda n: ecube_hypercube(n, 5)),
}


@pytest.mark.parametrize("case", list(CASES))
def test_benchmark_cdg_build(benchmark, case):
    net, mk = CASES[case]()
    alg = RoutingAlgorithm(mk(net))

    def payload():
        cdg = build_cdg(alg)
        assert is_acyclic(cdg)
        return cdg

    cdg = benchmark.pedantic(payload, rounds=1, iterations=1)
    numbering = dally_seitz_numbering(cdg)
    emit(
        f"V2 {case}: {cdg.number_of_nodes()} channels, "
        f"{cdg.number_of_edges()} dependencies, numbering size {len(numbering)}"
    )
