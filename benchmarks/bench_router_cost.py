"""V3 -- Chien router-complexity model (paper reference [4]).

Measures the intro's claim that oblivious routers are simpler/faster, and
the flip side for the paper's own construction: Figure 1's hub router N*
concentrates the whole network and clocks far slower than a mesh router.
"""


from benchmarks.conftest import emit
from repro.core.cyclic_dependency import build_cyclic_dependency_network
from repro.experiments import render_table
from repro.sim.router_cost import network_cost
from repro.topology import hypercube, mesh, torus


def _rows():
    rows = []
    for name, net, width in [
        ("mesh 8x8 (DOR)", mesh((8, 8)), 1),
        ("mesh 8x8 (fully adaptive)", mesh((8, 8)), 2),
        ("torus 4x4, 2 VCs (dateline)", torus((4, 4), vcs=2), 1),
        ("hypercube-4 (e-cube)", hypercube(4), 1),
        ("Figure 1 network", build_cyclic_dependency_network().network, 1),
    ]:
        cost = network_cost(net, candidate_width=width)
        row = {"network": name}
        row.update(cost.summary())
        rows.append(row)
    return rows


def test_benchmark_router_cost(benchmark):
    rows = benchmark.pedantic(_rows, rounds=1, iterations=1)
    emit(render_table(rows, title="V3: Chien router-cost model"))
    by_name = {r["network"]: r for r in rows}
    # adaptive selection costs cycle time on the same topology
    assert (
        by_name["mesh 8x8 (fully adaptive)"]["network cycle time"]
        > by_name["mesh 8x8 (DOR)"]["network cycle time"]
    )
    # the Figure 1 hub is the slowest router in the comparison
    fig1 = by_name["Figure 1 network"]
    assert fig1["bottleneck node"] == "N*"
    assert all(
        fig1["network cycle time"] >= r["network cycle time"] for r in rows
    )
