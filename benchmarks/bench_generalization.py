"""E6 -- Section 6 generalisation: minimum delay-to-deadlock grows with m.

Paper claim: ``Gen(m)`` requires at least one message to be delayed at
least ~m cycles before deadlock is possible.  Measured: Δ*(m) = m exactly
(m = 1..3 here; m = 4 confirmed offline, see EXPERIMENTS.md).
"""

import pytest

from benchmarks.conftest import emit
from repro.analysis.delay import min_delay_to_deadlock
from repro.campaign.adapters import generalization_via_campaign
from repro.core.generalized import generalized_messages
from repro.experiments import render_table


@pytest.fixture(scope="module")
def result():
    # the campaign runner fans the per-m searches out across processes
    return generalization_via_campaign((1, 2, 3), jobs=3)


def test_delay_grows_linearly(result):
    emit(render_table(result.rows(), title="E6: Gen(m) minimum delay to deadlock"))
    assert result.strictly_increasing
    assert result.deadlock_free_under_synchrony
    assert result.profile == {1: 1, 2: 2, 3: 3}


def test_benchmark_gen2_delay_search(benchmark, result):
    emit(render_table(result.rows(), title="E6: Gen(m) minimum delay to deadlock"))
    assert result.strictly_increasing and result.profile == {1: 1, 2: 2, 3: 3}
    def payload():
        res = min_delay_to_deadlock(generalized_messages(2), max_delay=3)
        assert res.min_delay == 2

    benchmark.pedantic(payload, rounds=1, iterations=1)
