"""E1 -- Figure 1 + Theorem 1 (DESIGN.md experiment index).

Regenerates the paper's headline artifact: the Cyclic Dependency routing
algorithm has a cyclic CDG yet is deadlock-free under synchrony; a single
cycle of in-flight delay completes the cycle (Section 6's observation).
"""

import pytest

from benchmarks.conftest import emit
from repro.analysis import SystemSpec, search_deadlock
from repro.core.cyclic_dependency import build_cyclic_dependency_network
from repro.experiments import render_table, run_fig1_experiment


@pytest.fixture(scope="module")
def result():
    return run_fig1_experiment(max_delay=3)


def test_fig1_matches_paper(result):
    emit(render_table(result.summary_rows(), title="E1: Figure 1 / Theorem 1"))
    emit("\n".join(result.narrative))
    assert result.matches_paper
    assert result.min_delay_to_deadlock == 1  # measured (paper: "one or more")


def test_fig1_replay_on_flit_simulator(result):
    assert result.replay_deadlocked


def bench_payload():
    cdn = build_cyclic_dependency_network()
    res = search_deadlock(
        SystemSpec.uniform(cdn.checker_messages(), budget=0), find_witness=False
    )
    assert res.is_false_resource_cycle
    return res.states_explored


def test_benchmark_theorem1_search(benchmark, result):
    """Time the full Theorem 1 exhaustive search (budget 0)."""
    emit(render_table(result.summary_rows(), title="E1: Figure 1 / Theorem 1"))
    emit("\n".join(result.narrative))
    assert result.matches_paper
    assert result.replay_deadlocked
    states = benchmark(bench_payload)
    assert states > 1000
