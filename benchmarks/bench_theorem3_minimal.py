"""E5 -- Theorem 3: minimal oblivious routing admits no such unreachable cycles."""

import pytest

from benchmarks.conftest import emit
from repro.experiments import render_kv
from repro.experiments.theorem3 import run_theorem3_experiment


@pytest.fixture(scope="module")
def result():
    return run_theorem3_experiment(
        num_messages=3, approach_range=(1, 2), hold_range=(2, 3), limit=40
    )


def test_theorem3_holds_over_sweep(result):
    emit(render_kv(result.summary(), title="E5: Theorem 3 sweep"))
    assert result.theorem_holds


def test_fig1_is_nonminimal(result):
    emit(render_kv(result.fig1_slack, title="E5: Figure 1 per-pair excess hops"))
    assert result.fig1_certified_nonminimal


def test_benchmark_minimal_sweep(benchmark, result):
    emit(render_kv(result.summary(), title="E5: Theorem 3 sweep"))
    assert result.theorem_holds and result.fig1_certified_nonminimal
    res = benchmark.pedantic(
        run_theorem3_experiment,
        kwargs=dict(num_messages=2, approach_range=(1, 2), hold_range=(2, 3)),
        rounds=1,
        iterations=1,
    )
    assert res.theorem_holds
