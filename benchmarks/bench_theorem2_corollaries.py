"""E4 -- Theorem 2 + Corollaries 1-3.

Within-cycle channel sharing always deadlocks; the classic baselines
(NxN->C form / suffix-closed / coherent) have no unreachable cycles --
either their CDG is acyclic with a Dally--Seitz numbering certificate, or
(unrestricted ring) its one cycle classifies as a reachable deadlock.
"""

import pytest

from benchmarks.conftest import emit
from repro.analysis import SystemSpec, search_deadlock
from repro.core.within_cycle import theorem2_default
from repro.experiments import render_table
from repro.experiments.theorem2 import run_corollary_baselines, run_theorem2_experiment


@pytest.fixture(scope="module")
def overlap():
    return run_theorem2_experiment()


def test_theorem2_all_deadlock(overlap):
    emit(render_table(overlap.overlap_rows, title="E4: Theorem 2 (shared channel within cycle)"))
    assert overlap.all_deadlock


def test_corollary_baselines():
    rows = run_corollary_baselines()
    emit(render_table(rows, title="E4: Corollary 1-3 baselines"))
    ring_row = rows[0]
    assert ring_row["classification"] == "deadlock"
    for row in rows[1:]:
        assert row["cdg acyclic"] is True


def test_benchmark_theorem2_search(benchmark, overlap):
    emit(render_table(overlap.overlap_rows, title="E4: Theorem 2 (shared channel within cycle)"))
    assert overlap.all_deadlock
    rows = run_corollary_baselines()
    emit(render_table(rows, title="E4: Corollary 1-3 baselines"))
    assert rows[0]["classification"] == "deadlock"
    cfg = theorem2_default()

    def payload():
        res = search_deadlock(
            SystemSpec.uniform(cfg.checker_messages()), find_witness=False
        )
        assert res.deadlock_reachable

    benchmark(payload)
