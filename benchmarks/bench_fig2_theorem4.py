"""E2 -- Figure 2 + Theorem 4: two messages sharing a channel always deadlock."""

import pytest

from benchmarks.conftest import emit
from repro.analysis import SystemSpec, search_deadlock
from repro.core.two_message import build_two_message_config
from repro.experiments import render_table, run_fig2_experiment


@pytest.fixture(scope="module")
def result():
    return run_fig2_experiment()


def test_fig2_matches_paper(result):
    emit(render_table(result.sweep_rows, title="E2: Figure 2 / Theorem 4 sweep"))
    assert result.matches_paper
    assert result.all_sweep_deadlock  # Theorem 4 is universal


def test_fig2_proof_schedule_shape(result):
    # the minimum witness injects the longer-approach message first
    assert result.longer_approach_injected_first


def test_benchmark_theorem4_search(benchmark, result):
    emit(render_table(result.sweep_rows, title="E2: Figure 2 / Theorem 4 sweep"))
    assert result.matches_paper and result.all_sweep_deadlock
    cfg = build_two_message_config()

    def payload():
        res = search_deadlock(SystemSpec.uniform(cfg.checker_messages()))
        assert res.deadlock_reachable
        return res

    benchmark(payload)
