"""Shared benchmark fixtures and reporting helpers.

Each ``bench_*.py`` module regenerates one paper artifact (figure/theorem --
see DESIGN.md section 4): it runs the corresponding experiment driver once
(module-scoped), *asserts the paper-shape claims*, prints the reproduction
table (visible with ``pytest benchmarks/ -s``), and times the core
computation via pytest-benchmark.
"""

from __future__ import annotations

import pytest


def emit(text: str) -> None:
    """Print an experiment table under the benchmark output."""
    print("\n" + text)
