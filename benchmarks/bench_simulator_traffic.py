"""V1 -- substrate validation: wormhole simulator under synthetic traffic.

Shape checks: deadlock-free baselines deliver everything with latency
rising in offered load; the unrestricted ring (positive control) deadlocks.
"""

import pytest

from benchmarks.conftest import emit
from repro.experiments import render_table
from repro.experiments.traffic import run_ring_deadlock_probe, run_traffic_experiment
from repro.routing import dimension_order_mesh
from repro.sim import SimConfig, Simulator
from repro.sim.traffic import uniform_random_traffic
from repro.topology import mesh


@pytest.fixture(scope="module")
def points():
    return run_traffic_experiment(rates=(0.02, 0.06), cycles=200)


def test_baselines_deliver_everything(points):
    emit(render_table([p.row() for p in points], title="V1: traffic baselines"))
    for p in points:
        assert not p.deadlocked
        assert p.delivered == p.total


def test_latency_rises_with_load(points):
    by_alg: dict[str, list] = {}
    for p in points:
        by_alg.setdefault(p.algorithm, []).append(p)
    for alg, pts in by_alg.items():
        pts.sort(key=lambda p: p.rate)
        assert pts[-1].mean_latency >= pts[0].mean_latency * 0.95, alg


def test_ring_positive_control_deadlocks():
    probe = run_ring_deadlock_probe()
    emit(render_table([probe.row()], title="V1: unrestricted ring positive control"))
    assert probe.deadlocked


def test_benchmark_mesh_simulation(benchmark, points):
    emit(render_table([p.row() for p in points], title="V1: traffic baselines"))
    assert all((not p.deadlocked) and p.delivered == p.total for p in points)
    probe = run_ring_deadlock_probe()
    emit(render_table([probe.row()], title="V1: unrestricted ring positive control"))
    assert probe.deadlocked
    net = mesh((8, 8))
    fn = dimension_order_mesh(net, 2)
    specs = uniform_random_traffic(net, rate=0.05, cycles=150, length=4, seed=2)

    def payload():
        res = Simulator(net, fn, specs, config=SimConfig(max_cycles=20_000)).run()
        assert res.completed
        return res.stats.flit_moves

    moves = benchmark.pedantic(payload, rounds=2, iterations=1)
    assert moves > 1000
