"""E3 -- Figure 3 + Theorem 5: three messages sharing a channel.

Regenerates the six-panel classification (paper: (a), (b) unreachable;
(c)-(f) deadlock) and reports agreement between the (partly reconstructed,
calibrated) eight conditions and the exhaustive search over a random
configuration sweep.
"""

import pytest

from benchmarks.conftest import emit
from repro.experiments import render_table
from repro.experiments.fig3 import classify_panel, run_condition_sweep, run_fig3_experiment


@pytest.fixture(scope="module")
def panels():
    return run_fig3_experiment()


def test_fig3_panels_match_paper(panels):
    emit(render_table([r.row() for r in panels], title="E3: Figure 3 / Theorem 5 panels"))
    for r in panels:
        assert r.search_matches_paper, r.panel


def test_fig3_conditions_agree_with_search_on_panels(panels):
    for r in panels:
        assert r.conditions_match_search, r.panel


def test_fig3_condition_sweep_agreement():
    sweep = run_condition_sweep(samples=25, seed=11)
    emit(
        f"E3 sweep: conditions vs exhaustive search agree on "
        f"{sweep.agree}/{sweep.total} random configurations"
    )
    for d in sweep.disagreements:
        emit(f"  disagreement: {d}")
    assert sweep.rate == 1.0


def test_benchmark_panel_classification(benchmark, panels):
    emit(render_table([r.row() for r in panels], title="E3: Figure 3 / Theorem 5 panels"))
    for r in panels:
        assert r.search_matches_paper and r.conditions_match_search, r.panel
    res = benchmark.pedantic(
        classify_panel, args=("e",), rounds=1, iterations=1
    )
    assert not res.search_unreachable
