#!/usr/bin/env python3
"""Adaptive routing context: Duato's escape channels, live.

The paper's Section 2 recounts how Duato showed cyclic dependency graphs
are fine for adaptive routing as long as an acyclic *escape* subnetwork
exists.  This script makes that concrete:

* fully adaptive minimal routing on a single-VC mesh: cyclic CDG, and a
  crafted scenario wedges into an OR-semantics knot deadlock;
* the same adaptivity with a dimension-order escape layer on VC0: the
  escape certificate holds and heavy random traffic always delivers.

Run:  python examples/adaptive_duato.py
"""

from repro.cdg import build_adaptive_cdg, duato_certificate, is_acyclic
from repro.routing import FullyAdaptiveMesh, duato_escape_mesh
from repro.routing.adaptive import AdaptiveRoutingFunction
from repro.sim import MessageSpec, SimConfig, Simulator
from repro.sim.traffic import uniform_random_traffic
from repro.topology import mesh, ring


def knot_demo():
    print("== OR-semantics knot on an adaptive 2-VC ring ==")
    n = 4
    net = ring(n, vcs=2)

    class AdaptiveRing(AdaptiveRoutingFunction):
        """Either virtual channel of the clockwise link."""

        def candidates(self, in_channel, node, dest):
            return self.network.channels_between(node, (node + 1) % n)

    specs = [
        MessageSpec(2 * i + j, i, (i + 3) % n, length=6)
        for i in range(n)
        for j in range(2)
    ]
    res = Simulator(net, AdaptiveRing(net), specs, config=SimConfig(max_cycles=500)).run()
    print(f"eight 3-hop messages, both VC layers filled -> {res.deadlock}")
    print("(every candidate of every blocked message is held by another blocked one)\n")


def duato_demo():
    print("== Duato escape channels on a 4x4 mesh ==")
    net1 = mesh((4, 4))
    adaptive = FullyAdaptiveMesh(net1, 2)
    print(
        "fully adaptive, 1 VC: CDG acyclic?",
        is_acyclic(build_adaptive_cdg(adaptive)),
    )

    net2 = mesh((4, 4), vcs=2)
    escape = duato_escape_mesh(net2, 2)
    cert = duato_certificate(escape)
    print(
        f"with escape layer: full CDG acyclic? {cert.full_cdg_acyclic}; "
        f"escape sub-CDG acyclic? {cert.escape_cdg_acyclic}; "
        f"escape connected? {cert.escape_connected}"
    )
    print(f"Duato's sufficient condition satisfied: {cert.deadlock_free}")

    specs = uniform_random_traffic(net2, rate=0.3, cycles=120, length=4, seed=17)
    res = Simulator(net2, escape, specs, config=SimConfig(max_cycles=60_000)).run()
    print(
        f"heavy random traffic: delivered {res.delivered}/{res.total}, "
        f"deadlock: {res.deadlocked}, mean latency "
        f"{res.stats.mean_latency():.1f} cycles"
    )
    assert not res.deadlocked


if __name__ == "__main__":
    knot_demo()
    duato_demo()
