#!/usr/bin/env python3
"""A gallery of every deadlock/unreachability regime the paper maps out.

For each configuration family (Figure 2, Theorem 2 overlap, the six
Figure 3 panels) the script classifies the cycle by exhaustive search and,
where a deadlock exists, prints the formation schedule.

Run:  python examples/deadlock_gallery.py
"""

from repro.analysis import SystemSpec, classify_configuration, search_deadlock
from repro.core.conditions import TheoremFiveInput, evaluate_conditions
from repro.core.three_message import FIG3_PANELS, build_three_message_config
from repro.core.two_message import build_two_message_config
from repro.core.within_cycle import theorem2_default


def show(title, construction, *, copies=0):
    msgs = construction.checker_messages()
    if copies:
        reachable, res = classify_configuration(msgs, copy_depth=copies)
        verdict = "DEADLOCK" if reachable else "false resource cycle"
        print(f"{title:<46} -> {verdict}")
        return
    res = search_deadlock(SystemSpec.uniform(msgs, budget=0))
    verdict = "DEADLOCK" if res.deadlock_reachable else "false resource cycle"
    print(f"{title:<46} -> {verdict}  ({res.states_explored} states)")
    if res.witness is not None:
        first_line = res.witness.render().splitlines()[0]
        print(f"    {first_line}")


def main():
    print("== Figure 2 / Theorem 4: two messages sharing a channel ==")
    show("fig2 default (d1=3, d2=2, holds 4)", build_two_message_config())
    show("fig2 equal approaches (d1=d2=2)", build_two_message_config(approach_1=2, approach_2=2))

    print("\n== Theorem 2: sharing inside the cycle ==")
    show("four messages overlapping on an 8-ring", theorem2_default())

    print("\n== Figure 3 / Theorem 5: three messages sharing a channel ==")
    for panel, params in FIG3_PANELS.items():
        c = build_three_message_config(params)
        report = evaluate_conditions(TheoremFiveInput.from_specs(list(params.specs)))
        failed = ",".join(map(str, report.failed())) or "none"
        print(f"panel ({panel}): {params.description}")
        print(f"    conditions failed: {failed}")
        show(f"    panel ({panel}) classification", c, copies=1)

    print("\nLegend: the paper predicts (a), (b) unreachable; (c)-(f) deadlock.")


if __name__ == "__main__":
    main()
