#!/usr/bin/env python3
"""Interactive Theorem 5 explorer: classify your own three-message cycle.

Give three (approach, hold) pairs in cycle order; the script evaluates the
eight Theorem 5 conditions, runs the exhaustive search (with interposed-
copy augmentation, the paper's own adversary device), and if a deadlock
exists prints the formation timeline.

Usage::

    python examples/theorem5_explorer.py 4 5  2 4  3 4     # Figure 3(a)
    python examples/theorem5_explorer.py 4 3  2 4  3 4     # Figure 3(c)
    python examples/theorem5_explorer.py                   # default demo set
"""

import sys

from repro.analysis import SystemSpec, classify_configuration, search_deadlock
from repro.core.conditions import TheoremFiveInput, evaluate_conditions
from repro.core.specs import CycleMessageSpec, build_shared_cycle
from repro.viz import witness_timeline


def classify(params: list[tuple[int, int]]) -> None:
    specs = [
        CycleMessageSpec(approach_len=d, hold_len=h, label=f"S{i + 1}")
        for i, (d, h) in enumerate(params)
    ]
    print(f"\n== configuration {params} (cycle order S1 -> S2 -> S3 -> S1) ==")
    report = evaluate_conditions(TheoremFiveInput.from_specs(specs))
    for num, ok in report.conditions.items():
        print(f"  condition {num}: {'holds' if ok else 'VIOLATED'}")
    predicted = "unreachable" if report.all_hold else "deadlock"
    print(f"  Theorem 5 predicts: {predicted}")

    try:
        construction = build_shared_cycle(specs, name="explorer")
    except ValueError as exc:
        print(f"  invalid geometry: {exc}")
        return
    reachable, _ = classify_configuration(construction.checker_messages(), copy_depth=1)
    verdict = "deadlock" if reachable else "unreachable (false resource cycle)"
    print(f"  exhaustive search says: {verdict}")
    agree = (verdict.startswith("unreachable")) == report.all_hold
    print(f"  conditions and search agree: {agree}")

    if reachable:
        res = search_deadlock(SystemSpec.uniform(construction.checker_messages()))
        if res.witness is not None:
            print("\n  base-scenario formation timeline:")
            for line in witness_timeline(res.witness).splitlines():
                print("  " + line)
        else:
            print("  (deadlock needs an interposed extra copy -- see the paper's")
            print("   Theorem 5 proof; base three messages alone are safe)")


def main(argv: list[str]) -> None:
    if len(argv) == 6:
        nums = [int(x) for x in argv]
        params = [(nums[0], nums[1]), (nums[2], nums[3]), (nums[4], nums[5])]
        classify(params)
        return
    if argv:
        print(__doc__)
        sys.exit(2)
    # demo set: one unreachable, one schedule-deadlock, one copy-deadlock
    classify([(4, 5), (2, 4), (3, 4)])  # all conditions hold
    classify([(5, 6), (1, 2), (2, 3)])  # condition 7 violated
    classify([(4, 3), (2, 4), (3, 4)])  # condition 4 violated


if __name__ == "__main__":
    main(sys.argv[1:])
