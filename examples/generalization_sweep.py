#!/usr/bin/env python3
"""Section 6 generalisation: how much router delay does deadlock need?

Sweeps the ``Gen(m)`` family (``Gen(1)`` = Figure 1 geometry) and measures
the minimum per-message stall budget at which the exhaustive search can
reach a deadlock.  The paper's claim -- confirmed here -- is that the
threshold grows without bound, so the Figure 1 idea survives arbitrary
clock skew if the network is scaled accordingly.

The sweep goes through the campaign runner: ``--jobs`` fans the per-m
searches out across processes, and ``--cache-dir`` memoises verdicts so a
re-run (or a later ``python -m repro campaign run --spec paper-battery``,
which issues the identical tasks) is instant.

Run:  python examples/generalization_sweep.py [max_m] [--jobs N] [--cache-dir D]
(m = 3 takes about a minute cold; each further step is several times slower)
"""

import argparse

from repro.campaign.adapters import run_tasks
from repro.campaign.specs import gen_tasks
from repro.core.generalized import build_generalized
from repro.viz import ascii_chart


def main(max_m: int = 3, *, jobs: int = 1, cache_dir: str | None = None):
    tasks = gen_tasks(tuple(range(1, max_m + 1)))
    results, summary = run_tasks(
        tasks, jobs=jobs, cache_dir=cache_dir, spec_name="gen-example"
    )
    series = []
    print("m   ring  approaches  holds       min-delay  seconds    source")
    print("-" * 66)
    for task, res in zip(tasks, results):
        if not res.ok:
            raise SystemExit(f"task failed: {res.name}: {res.error}")
        m = int(task.params_dict()["m"])
        c = build_generalized(m)
        min_delay = res.detail["min_delay"]
        assert min_delay != 0, "Gen(m) must be deadlock-free under synchrony"
        approaches = [s.approach_len for s in c.specs]
        holds = [s.hold_len for s in c.specs]
        print(
            f"{m:<3} {len(c.cycle_channels):<5} {str(approaches):<11} "
            f"{str(holds):<11} {str(min_delay):<10} {res.wall_time:<9.1f} "
            f"{res.source}"
        )
        if min_delay is not None:
            series.append((m, min_delay))
    if len(series) > 1:
        print()
        print(ascii_chart(series, x_label="m", y_label="min delay Δ*(m)"))
    print(f"\n({summary.live} searched live, {summary.from_cache} from cache, "
          f"{summary.workers} worker(s), {summary.wall_time:.1f}s)")
    print("\npaper: 'a network configuration can be constructed requiring any")
    print("amount of extra delay before deadlock can occur' -- measured Δ*(m) = m.")


if __name__ == "__main__":
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("max_m", type=int, nargs="?", default=3)
    ap.add_argument("--jobs", type=int, default=1)
    ap.add_argument("--cache-dir", default=None)
    args = ap.parse_args()
    main(args.max_m, jobs=args.jobs, cache_dir=args.cache_dir)
