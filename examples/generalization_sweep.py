#!/usr/bin/env python3
"""Section 6 generalisation: how much router delay does deadlock need?

Sweeps the ``Gen(m)`` family (``Gen(1)`` = Figure 1 geometry) and measures
the minimum per-message stall budget at which the exhaustive search can
reach a deadlock.  The paper's claim -- confirmed here -- is that the
threshold grows without bound, so the Figure 1 idea survives arbitrary
clock skew if the network is scaled accordingly.

Run:  python examples/generalization_sweep.py [max_m]
(m = 3 takes about a minute; each further step is several times slower)
"""

import sys
import time

from repro.analysis.delay import min_delay_to_deadlock
from repro.core.generalized import build_generalized, generalized_messages
from repro.viz import ascii_chart


def main(max_m: int = 3):
    series = []
    print("m   ring  approaches  holds       min-delay  seconds")
    print("-" * 58)
    for m in range(1, max_m + 1):
        c = build_generalized(m)
        t0 = time.time()
        res = min_delay_to_deadlock(
            generalized_messages(m), max_delay=m + 3, max_states=40_000_000
        )
        dt = time.time() - t0
        approaches = [s.approach_len for s in c.specs]
        holds = [s.hold_len for s in c.specs]
        print(
            f"{m:<3} {len(c.cycle_channels):<5} {str(approaches):<11} "
            f"{str(holds):<11} {str(res.min_delay):<10} {dt:.1f}"
        )
        assert res.deadlock_free_under_synchrony
        if res.min_delay is not None:
            series.append((m, res.min_delay))
    if len(series) > 1:
        print()
        print(ascii_chart(series, x_label="m", y_label="min delay Δ*(m)"))
    print("\npaper: 'a network configuration can be constructed requiring any")
    print("amount of extra delay before deadlock can occur' -- measured Δ*(m) = m.")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 3)
