#!/usr/bin/env python3
"""The paper's headline example, end to end (Figure 1 / Theorem 1).

Builds the Cyclic Dependency network, shows that:

* its channel dependency graph contains exactly one cycle (14 channels);
* no Dally--Seitz numbering certificate exists;
* the routing algorithm is oblivious (``R: C x N -> C``) but neither
  coherent, suffix-closed, minimal, nor input-channel independent -- so
  none of the paper's corollaries force the cycle to be a real hazard;
* exhaustive search over every injection schedule and arbitration outcome
  finds NO reachable deadlock: the cycle is a *false resource cycle*;
* with one cycle of adversarial router delay the same cycle deadlocks, and
  the witness replays to a real deadlock on the flit-level simulator.

Run:  python examples/false_resource_cycle.py
"""

from repro.analysis import SystemSpec, search_deadlock
from repro.analysis.schedules import replay_witness
from repro.cdg import build_cdg, cycle_summary, find_cycles
from repro.core.cyclic_dependency import build_cyclic_dependency_network
from repro.routing import analyze_properties


def main():
    cdn = build_cyclic_dependency_network()
    alg = cdn.algorithm
    print(f"network: {cdn.network}")
    print("cycle messages:")
    for tag, (src, dst) in cdn.message_pairs.items():
        path = alg.path(src, dst)
        print(f"  {tag}: {src}->{dst} via " + " ".join(c.short() for c in path))

    cdg = build_cdg(alg)
    print("\nCDG:", cycle_summary(cdg))
    cycle = find_cycles(cdg).cycles[0]
    print("the one cycle:", " -> ".join(c.short() for c in cycle[:4]), "... (14 channels)")

    pairs = list(cdn.message_pairs.values()) + [("P3", "D1"), ("X1", "D2")]
    props = analyze_properties(alg, pairs)
    print("\nrouting properties:", props.summary_row())

    msgs = cdn.checker_messages()
    sync = search_deadlock(SystemSpec.uniform(msgs, budget=0))
    print(
        f"\nTheorem 1 -- exhaustive search at synchrony (budget 0): "
        f"deadlock reachable = {sync.deadlock_reachable} "
        f"({sync.states_explored} states explored)"
    )
    assert sync.is_false_resource_cycle

    delayed = search_deadlock(SystemSpec.uniform(msgs, budget=1))
    print(
        f"Section 6 -- with ONE cycle of router delay: "
        f"deadlock reachable = {delayed.deadlock_reachable}"
    )
    print("\nwitness (how the adversary forms the deadlock):")
    print(delayed.witness.render())

    sim = replay_witness(
        delayed.witness, cdn.network, cdn.routing, list(cdn.message_pairs.values())
    )
    print(f"\nflit-level replay of the witness: {sim.deadlock}")
    assert sim.deadlocked


if __name__ == "__main__":
    main()
