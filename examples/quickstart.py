#!/usr/bin/env python3
"""Quickstart: build a network, route, inspect the CDG, simulate, model-check.

Walks the full public API surface in five short steps:

1. build a topology (a 4x4 mesh and a ring);
2. attach an oblivious routing algorithm and materialise paths;
3. build the channel dependency graph and test Dally--Seitz acyclicity;
4. simulate wormhole traffic flit-by-flit and watch a deadlock happen;
5. decide deadlock *reachability* exhaustively with the model checker.

Run:  python examples/quickstart.py
"""

from repro.analysis import CheckerMessage, SystemSpec, search_deadlock
from repro.cdg import build_cdg, cycle_summary, dally_seitz_numbering
from repro.routing import RoutingAlgorithm, clockwise_ring, dimension_order_mesh
from repro.sim import MessageSpec, SimConfig, Simulator
from repro.topology import mesh, ring


def step1_topologies():
    m = mesh((4, 4))
    r = ring(6)
    print(f"step 1: built {m} and {r}")
    return m, r


def step2_routing(m, r):
    dor = RoutingAlgorithm(dimension_order_mesh(m, 2))
    cw = RoutingAlgorithm(clockwise_ring(r, 6))
    path = dor.path((0, 0), (3, 2))
    print("step 2: DOR path (0,0)->(3,2):", " ".join(c.short() for c in path))
    return dor, cw


def step3_cdg(dor, cw):
    mesh_cdg = build_cdg(dor)
    ring_cdg = build_cdg(cw)
    print("step 3: mesh DOR CDG:", cycle_summary(mesh_cdg))
    print("        ring CDG:    ", cycle_summary(ring_cdg))
    numbering = dally_seitz_numbering(mesh_cdg)
    print(f"        mesh numbering certificate covers {len(numbering)} channels")


def step4_simulate(r):
    # every node sends 3 hops ahead with long messages: the classic ring jam
    specs = [MessageSpec(i, i, (i + 3) % 6, length=8) for i in range(6)]
    sim = Simulator(r, clockwise_ring(r, 6), specs, config=SimConfig(max_cycles=1000))
    res = sim.run()
    print(f"step 4: ring overload -> {res.deadlock}")
    assert res.deadlocked


def step5_model_check(cw):
    # the same scenario, decided over EVERY schedule, not one run
    msgs = [
        CheckerMessage.from_channels(cw.path(i, (i + 3) % 6), length=3, tag=f"m{i}")
        for i in range(6)
    ]
    res = search_deadlock(SystemSpec.uniform(msgs, budget=0))
    print(
        f"step 5: exhaustive search explored {res.states_explored} states; "
        f"deadlock reachable: {res.deadlock_reachable}"
    )
    print(res.witness.render().splitlines()[0])


def main():
    m, r = step1_topologies()
    dor, cw = step2_routing(m, r)
    step3_cdg(dor, cw)
    step4_simulate(r)
    step5_model_check(cw)
    print("quickstart complete.")


if __name__ == "__main__":
    main()
