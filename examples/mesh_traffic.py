#!/usr/bin/env python3
"""Wormhole traffic study on the classic substrates.

Sweeps offered load on an 8x8 mesh under dimension-order and west-first
routing and a 4x4 dateline-VC torus, reporting delivery, latency and
throughput -- then shows the unrestricted ring deadlocking as the positive
control.  This validates the flit-level simulator in the regime the paper's
model assumes (the theory experiments all reduce to "does this simulator
deadlock or not").

Run:  python examples/mesh_traffic.py
"""

from repro.experiments.report import render_table
from repro.experiments.traffic import run_ring_deadlock_probe, run_traffic_experiment


def main():
    points = run_traffic_experiment(rates=(0.02, 0.05, 0.1), cycles=250)
    print(render_table([p.row() for p in points], title="offered-load sweep"))

    probe = run_ring_deadlock_probe()
    print()
    print(render_table([probe.row()], title="positive control: unrestricted clockwise ring"))
    if probe.deadlocked:
        print("\nthe ring jammed, as theory demands (cyclic CDG, NxN->C routing:")
        print("Corollary 1 says its cycle cannot be a false resource cycle).")


if __name__ == "__main__":
    main()
